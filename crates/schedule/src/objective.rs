//! Pluggable scoring objectives over an evaluated schedule.
//!
//! The paper minimizes the schedule length (makespan) only. Production
//! scheduling cares about more: mean job turnaround (flowtime), how
//! evenly the machine suite is loaded, and blends of all three. An
//! [`Objective`] maps the timing arrays a single evaluator pass produces
//! — per-task start/finish plus per-machine busy time — to one scalar
//! where **lower is always better**, so every search algorithm in the
//! suite (SE, GA, SA, tabu, random) optimizes any objective through the
//! same argmin machinery.
//!
//! [`ObjectiveKind`] is the plumbing-friendly, `Copy` enumeration of the
//! built-in objectives; it is what [`crate::RunBudget`] carries from the
//! CLI down into every scheduler. Custom objectives only need the trait.

use crate::eval::ScheduleReport;
use serde::{Deserialize, Serialize};

/// Borrowed view of one evaluated schedule: everything an objective may
/// score, produced by a single evaluator pass (or assembled from a
/// [`ScheduleReport`], e.g. the discrete-event replay oracle).
#[derive(Debug, Clone, Copy)]
pub struct EvalView<'a> {
    /// Start time per task, indexed by task.
    pub start: &'a [f64],
    /// Finish time per task, indexed by task.
    pub finish: &'a [f64],
    /// Total execution (busy) time per machine, indexed by machine.
    pub machine_busy: &'a [f64],
}

/// A scalar schedule-quality measure; **lower is better**.
///
/// Implementations must be pure functions of the view — they are invoked
/// concurrently from [`crate::BatchEvaluator`] worker threads (hence the
/// `Sync` supertrait).
pub trait Objective: Sync {
    /// Short stable identifier (CSV columns, CLI, reports).
    fn name(&self) -> &str;

    /// Scores one evaluated schedule.
    fn value(&self, view: &EvalView<'_>) -> f64;
}

/// The schedule length the paper minimizes: the latest finish time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Makespan;

impl Objective for Makespan {
    fn name(&self) -> &str {
        "makespan"
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        view.finish.iter().copied().fold(0.0, f64::max)
    }
}

/// Sum of all task finish times (total flowtime / total completion time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TotalFlowtime;

impl Objective for TotalFlowtime {
    fn name(&self) -> &str {
        "total-flowtime"
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        view.finish.iter().sum()
    }
}

/// Mean task finish time — total flowtime normalized by task count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeanFlowtime;

impl Objective for MeanFlowtime {
    fn name(&self) -> &str {
        "mean-flowtime"
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        if view.finish.is_empty() {
            0.0
        } else {
            view.finish.iter().sum::<f64>() / view.finish.len() as f64
        }
    }
}

/// Machine load imbalance: the busiest machine's excess over the mean
/// busy time. Zero means perfectly balanced load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadBalance;

impl Objective for LoadBalance {
    fn name(&self) -> &str {
        "load-balance"
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        if view.machine_busy.is_empty() {
            return 0.0;
        }
        let max = view.machine_busy.iter().copied().fold(0.0, f64::max);
        let mean = view.machine_busy.iter().sum::<f64>() / view.machine_busy.len() as f64;
        max - mean
    }
}

/// Weighted blend `w_mk·makespan + w_ft·mean_flowtime + w_lb·imbalance`.
///
/// Mean flowtime (not total) keeps the three components on comparable
/// scales, so unit weights are a sensible starting point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weighted {
    /// Weight on the makespan component.
    pub makespan: f64,
    /// Weight on the mean-flowtime component.
    pub flowtime: f64,
    /// Weight on the load-imbalance component.
    pub balance: f64,
}

impl Objective for Weighted {
    fn name(&self) -> &str {
        "weighted"
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        self.makespan * Makespan.value(view)
            + self.flowtime * MeanFlowtime.value(view)
            + self.balance * LoadBalance.value(view)
    }
}

/// The built-in objectives as plumbable configuration.
///
/// `Copy + PartialEq` so [`crate::RunBudget`] stays a plain value type;
/// dispatches to the unit objectives above through its own [`Objective`]
/// impl. (Not serde-derived: the run budget is never persisted; the CLI
/// round-trips through [`parse`](ObjectiveKind::parse)/
/// [`label`](ObjectiveKind::label) instead.)
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum ObjectiveKind {
    /// Minimize the schedule length (the paper's objective; the default).
    #[default]
    Makespan,
    /// Minimize the sum of task finish times.
    TotalFlowtime,
    /// Minimize the mean task finish time.
    MeanFlowtime,
    /// Minimize the machine load imbalance.
    LoadBalance,
    /// Minimize a weighted blend of the three components.
    Weighted {
        /// Weight on the makespan component.
        makespan: f64,
        /// Weight on the mean-flowtime component.
        flowtime: f64,
        /// Weight on the load-imbalance component.
        balance: f64,
    },
}

impl ObjectiveKind {
    /// Every non-parameterized kind, for sweeps and tests.
    pub const BASIC: [ObjectiveKind; 4] = [
        ObjectiveKind::Makespan,
        ObjectiveKind::TotalFlowtime,
        ObjectiveKind::MeanFlowtime,
        ObjectiveKind::LoadBalance,
    ];

    /// Parses a CLI spelling: `makespan`, `total-flowtime`,
    /// `mean-flowtime`, `load-balance`, or `weighted:MK,FT,LB` (three
    /// comma-separated weights).
    pub fn parse(s: &str) -> Option<ObjectiveKind> {
        match s {
            "makespan" => Some(ObjectiveKind::Makespan),
            "total-flowtime" => Some(ObjectiveKind::TotalFlowtime),
            "mean-flowtime" => Some(ObjectiveKind::MeanFlowtime),
            "load-balance" => Some(ObjectiveKind::LoadBalance),
            _ => {
                let weights = s.strip_prefix("weighted:")?;
                let parts: Vec<&str> = weights.split(',').collect();
                if parts.len() != 3 {
                    return None;
                }
                let w: Vec<f64> = parts.iter().filter_map(|p| p.trim().parse().ok()).collect();
                if w.len() != 3 || w.iter().any(|v| !v.is_finite()) {
                    return None;
                }
                Some(ObjectiveKind::Weighted { makespan: w[0], flowtime: w[1], balance: w[2] })
            }
        }
    }

    /// The CLI spelling; `parse(kind.label())` round-trips.
    pub fn label(&self) -> String {
        match *self {
            ObjectiveKind::Makespan => "makespan".to_string(),
            ObjectiveKind::TotalFlowtime => "total-flowtime".to_string(),
            ObjectiveKind::MeanFlowtime => "mean-flowtime".to_string(),
            ObjectiveKind::LoadBalance => "load-balance".to_string(),
            ObjectiveKind::Weighted { makespan, flowtime, balance } => {
                format!("weighted:{makespan},{flowtime},{balance}")
            }
        }
    }

    /// Whether this is the plain makespan objective (the fast paths —
    /// suffix-incremental evaluation — only apply to it).
    #[inline]
    pub fn is_makespan(&self) -> bool {
        matches!(self, ObjectiveKind::Makespan)
    }
}

impl Objective for ObjectiveKind {
    fn name(&self) -> &str {
        match self {
            ObjectiveKind::Makespan => "makespan",
            ObjectiveKind::TotalFlowtime => "total-flowtime",
            ObjectiveKind::MeanFlowtime => "mean-flowtime",
            ObjectiveKind::LoadBalance => "load-balance",
            ObjectiveKind::Weighted { .. } => "weighted",
        }
    }

    #[inline]
    fn value(&self, view: &EvalView<'_>) -> f64 {
        match *self {
            ObjectiveKind::Makespan => Makespan.value(view),
            ObjectiveKind::TotalFlowtime => TotalFlowtime.value(view),
            ObjectiveKind::MeanFlowtime => MeanFlowtime.value(view),
            ObjectiveKind::LoadBalance => LoadBalance.value(view),
            ObjectiveKind::Weighted { makespan, flowtime, balance } => {
                Weighted { makespan, flowtime, balance }.value(view)
            }
        }
    }
}

/// The per-objective summary attached to a [`ScheduleReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveValues {
    /// Latest finish time.
    pub makespan: f64,
    /// Sum of finish times.
    pub total_flowtime: f64,
    /// Mean finish time.
    pub mean_flowtime: f64,
    /// Busiest machine's excess over mean busy time.
    pub load_imbalance: f64,
}

impl ObjectiveValues {
    /// Computes all built-in objective values from one view.
    pub fn from_view(view: &EvalView<'_>) -> ObjectiveValues {
        ObjectiveValues {
            makespan: Makespan.value(view),
            total_flowtime: TotalFlowtime.value(view),
            mean_flowtime: MeanFlowtime.value(view),
            load_imbalance: LoadBalance.value(view),
        }
    }
}

/// Scores a finished [`ScheduleReport`] under `obj` — the bridge that
/// lets the discrete-event replay (`sim.rs`) act as an oracle for every
/// objective, not just makespan.
pub fn objective_from_report(obj: &dyn Objective, report: &ScheduleReport) -> f64 {
    obj.value(&report.view())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(start: &'a [f64], finish: &'a [f64], busy: &'a [f64]) -> EvalView<'a> {
        EvalView { start, finish, machine_busy: busy }
    }

    #[test]
    fn makespan_is_max_finish() {
        let v = view(&[0.0, 1.0], &[4.0, 9.0], &[4.0, 8.0]);
        assert_eq!(Makespan.value(&v), 9.0);
        assert_eq!(Makespan.name(), "makespan");
    }

    #[test]
    fn flowtimes() {
        let v = view(&[0.0, 0.0, 0.0], &[2.0, 4.0, 6.0], &[12.0]);
        assert_eq!(TotalFlowtime.value(&v), 12.0);
        assert_eq!(MeanFlowtime.value(&v), 4.0);
    }

    #[test]
    fn load_balance_zero_when_even() {
        let v = view(&[], &[], &[5.0, 5.0, 5.0]);
        assert_eq!(LoadBalance.value(&v), 0.0);
        let v = view(&[], &[], &[9.0, 3.0]);
        assert_eq!(LoadBalance.value(&v), 3.0);
    }

    #[test]
    fn weighted_blends_components() {
        let v = view(&[0.0, 0.0], &[2.0, 6.0], &[8.0, 0.0]);
        // makespan 6, mean flowtime 4, imbalance 4.
        let w = Weighted { makespan: 1.0, flowtime: 0.5, balance: 0.25 };
        assert_eq!(w.value(&v), 6.0 + 2.0 + 1.0);
    }

    #[test]
    fn kind_dispatch_matches_units() {
        let v = view(&[0.0, 0.0], &[3.0, 5.0], &[3.0, 5.0]);
        assert_eq!(ObjectiveKind::Makespan.value(&v), Makespan.value(&v));
        assert_eq!(ObjectiveKind::TotalFlowtime.value(&v), TotalFlowtime.value(&v));
        assert_eq!(ObjectiveKind::MeanFlowtime.value(&v), MeanFlowtime.value(&v));
        assert_eq!(ObjectiveKind::LoadBalance.value(&v), LoadBalance.value(&v));
        let k = ObjectiveKind::Weighted { makespan: 2.0, flowtime: 1.0, balance: 0.0 };
        let u = Weighted { makespan: 2.0, flowtime: 1.0, balance: 0.0 };
        assert_eq!(k.value(&v), u.value(&v));
    }

    #[test]
    fn parse_and_label_roundtrip() {
        for kind in ObjectiveKind::BASIC {
            assert_eq!(ObjectiveKind::parse(&kind.label()), Some(kind));
        }
        let w = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.5, balance: 2.0 };
        assert_eq!(ObjectiveKind::parse(&w.label()), Some(w));
        assert_eq!(ObjectiveKind::parse("weighted:1,0.5,2"), Some(w));
        assert!(ObjectiveKind::parse("bogus").is_none());
        assert!(ObjectiveKind::parse("weighted:1,2").is_none());
        assert!(ObjectiveKind::parse("weighted:1,2,x").is_none());
        assert!(ObjectiveKind::default().is_makespan());
        assert!(!ObjectiveKind::LoadBalance.is_makespan());
    }
}
