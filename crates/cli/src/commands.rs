//! Subcommand implementations.

use crate::args::{parse, Parsed};
use mshc_core::{SeConfig, SeScheduler};
use mshc_ga::{GaConfig, GaScheduler};
use mshc_heuristics::{
    CpopScheduler, HeftScheduler, ListPolicy, ListScheduler, RandomSearch, SaConfig,
    SimulatedAnnealing, TabuConfig, TabuSearch,
};
use mshc_platform::{HcInstance, InstanceMetrics};
use mshc_schedule::{Evaluator, Gantt, ObjectiveKind, RunBudget, Scheduler};
use mshc_trace::Trace;
use mshc_workloads::{Connectivity, Heterogeneity, WorkloadSpec};
use std::time::Duration;

/// Top-level usage text.
pub const USAGE: &str = "\
mshc <command> [options]

commands:
  generate   build a random workload and write it as JSON
             --tasks N --machines L --connectivity low|medium|high
             --heterogeneity low|medium|high --ccr X --seed N --out FILE
  run        run one scheduler on a workload
             --algo se|ga|heft|heft-ins|cpop|met|mct|olb|min-min|max-min|random|sa|tabu
             [--instance FILE | workload options] [--iters N] [--wall SECS]
             [--seed N] [--bias B] [--y Y] [--gantt] [--report] [--trace FILE]
  compare    run every scheduler on one workload and print a table
             [--instance FILE | workload options] [--iters N] [--wall SECS]
  info       print instance metrics
             --instance FILE | workload options

global options:
  --objective makespan|total-flowtime|mean-flowtime|load-balance|weighted:MK,FT,LB
             objective iterative schedulers minimize (default: makespan)
  --threads N
             evaluation worker threads (default: available parallelism,
             or the RAYON_NUM_THREADS environment variable)
  --checkpoint-stride N
             checkpoint stride of the incremental move evaluators used by
             se/sa/tabu (default: auto = ceil(sqrt(tasks)); results are
             identical at every stride, only speed/memory change)
";

/// Entry point: dispatches `argv` to a subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return Ok(());
    }
    let parsed = parse(argv);
    let threads: usize = parsed.get_parse("threads", 0)?;
    if threads > 0 {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .map_err(|e| format!("--threads: {e}"))?;
    }
    match parsed.positional.first().map(String::as_str) {
        Some("help") => {
            print!("{USAGE}");
            Ok(())
        }
        Some("generate") => cmd_generate(&parsed),
        Some("run") => cmd_run(&parsed),
        Some("compare") => cmd_compare(&parsed),
        Some("info") => cmd_info(&parsed),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("missing command".to_string()),
    }
}

fn workload_spec(p: &Parsed) -> Result<WorkloadSpec, String> {
    let connectivity = match p.get("connectivity").unwrap_or("medium") {
        "low" => Connectivity::Low,
        "medium" => Connectivity::Medium,
        "high" => Connectivity::High,
        other => return Err(format!("--connectivity: unknown class {other:?}")),
    };
    let heterogeneity = match p.get("heterogeneity").unwrap_or("medium") {
        "low" => Heterogeneity::Low,
        "medium" => Heterogeneity::Medium,
        "high" => Heterogeneity::High,
        other => return Err(format!("--heterogeneity: unknown class {other:?}")),
    };
    Ok(WorkloadSpec {
        tasks: p.get_parse("tasks", 50usize)?,
        machines: p.get_parse("machines", 8usize)?,
        connectivity,
        heterogeneity,
        ccr: p.get_parse("ccr", 0.5f64)?,
        seed: p.get_parse("seed", 2001u64)?,
    })
}

fn load_instance(p: &Parsed) -> Result<HcInstance, String> {
    match p.get("instance") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("{path}: invalid instance: {e}"))
        }
        None => Ok(workload_spec(p)?.generate()),
    }
}

fn budget(p: &Parsed) -> Result<RunBudget, String> {
    let mut b = RunBudget::default();
    let iters: u64 = p.get_parse("iters", 0)?;
    if iters > 0 {
        b.max_iterations = Some(iters);
    }
    let wall: f64 = p.get_parse("wall", 0.0)?;
    if wall > 0.0 {
        b.max_wall = Some(Duration::from_secs_f64(wall));
    }
    if b.validate().is_err() {
        // An all-`None` budget would make the iterative schedulers run
        // forever; default loudly instead of silently never stopping.
        b.max_iterations = Some(200);
        eprintln!("note: no --iters/--wall budget given; defaulting to --iters 200");
    }
    if let Some(raw) = p.get("objective") {
        b.objective = ObjectiveKind::parse(raw)
            .ok_or_else(|| format!("--objective: unknown objective {raw:?}"))?;
    }
    if p.get("checkpoint-stride").is_some() {
        let stride: usize = p.get_parse("checkpoint-stride", 0)?;
        if stride == 0 {
            return Err("--checkpoint-stride: must be at least 1 (omit for auto)".to_string());
        }
        b.checkpoint_stride = Some(stride);
    }
    debug_assert!(b.validate().is_ok());
    Ok(b)
}

fn make_scheduler(p: &Parsed, name: &str) -> Result<Box<dyn Scheduler>, String> {
    let seed: u64 = p.get_parse("seed", 2001)?;
    Ok(match name {
        "se" => {
            let mut cfg = SeConfig { seed, ..SeConfig::default() };
            cfg.selection_bias = p.get_parse("bias", f64::NAN)?;
            let y: usize = p.get_parse("y", 0)?;
            if y > 0 {
                cfg.y_limit = Some(y);
            }
            Box::new(SePendingBias(cfg))
        }
        "ga" => Box::new(GaScheduler::new(GaConfig { seed, ..GaConfig::default() })),
        "heft" => Box::new(HeftScheduler::new()),
        "heft-ins" => Box::new(HeftScheduler::with_insertion()),
        "cpop" => Box::new(CpopScheduler::new()),
        "met" => Box::new(ListScheduler::new(ListPolicy::Met)),
        "mct" => Box::new(ListScheduler::new(ListPolicy::Mct)),
        "olb" => Box::new(ListScheduler::new(ListPolicy::Olb)),
        "min-min" => Box::new(ListScheduler::new(ListPolicy::MinMin)),
        "max-min" => Box::new(ListScheduler::new(ListPolicy::MaxMin)),
        "random" => Box::new(RandomSearch::new(seed)),
        "sa" => Box::new(SimulatedAnnealing::new(SaConfig { seed, ..SaConfig::default() })),
        "tabu" => Box::new(TabuSearch::new(TabuConfig { seed, ..TabuConfig::default() })),
        other => return Err(format!("--algo: unknown algorithm {other:?}")),
    })
}

/// SE wrapper that resolves a NaN bias to the paper-recommended value for
/// the instance size at run time (the CLI does not know the size when the
/// flag is parsed).
struct SePendingBias(SeConfig);

impl Scheduler for SePendingBias {
    fn name(&self) -> &str {
        "se"
    }
    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        trace: Option<&mut Trace>,
    ) -> mshc_schedule::RunResult {
        let mut cfg = self.0;
        if cfg.selection_bias.is_nan() {
            cfg.selection_bias = SeConfig::recommended_bias(inst.task_count());
        }
        SeScheduler::new(cfg).run(inst, budget, trace)
    }
}

fn cmd_generate(p: &Parsed) -> Result<(), String> {
    let spec = workload_spec(p)?;
    let inst = spec.generate();
    let json = serde_json::to_string(&inst).map_err(|e| e.to_string())?;
    match p.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "wrote {} ({} tasks, {} machines, {} data items) tag={}",
                path,
                inst.task_count(),
                inst.machine_count(),
                inst.data_count(),
                spec.tag()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_run(p: &Parsed) -> Result<(), String> {
    let algo = p.get("algo").ok_or("run: --algo is required")?.to_string();
    let inst = load_instance(p)?;
    let budget = budget(p)?;
    let mut scheduler = make_scheduler(p, &algo)?;
    let mut trace = Trace::new();
    let result = scheduler.run(&inst, &budget, Some(&mut trace));
    result
        .solution
        .check(inst.graph())
        .map_err(|e| format!("BUG: scheduler emitted invalid solution: {e}"))?;
    println!(
        "{algo}: makespan {:.2} | {} iterations, {} evaluations, {:.3}s",
        result.makespan,
        result.iterations,
        result.evaluations,
        result.elapsed.as_secs_f64()
    );
    if !budget.objective.is_makespan() {
        println!("objective {}: {:.2}", budget.objective.label(), result.objective_value);
    }
    // One shared evaluation pass serves both --report and --gantt.
    let full_report = (p.flag("report") || p.flag("gantt"))
        .then(|| Evaluator::new(&inst).report(&result.solution));
    if p.flag("report") {
        let o = full_report.as_ref().expect("computed above").objectives();
        println!(
            "objectives: makespan {:.2} | total-flowtime {:.2} | mean-flowtime {:.2} | \
             load-imbalance {:.2}",
            o.makespan, o.total_flowtime, o.mean_flowtime, o.load_imbalance
        );
        let secs = result.elapsed.as_secs_f64();
        let evals_per_sec =
            if secs > 0.0 { result.evaluations as f64 / secs } else { f64::INFINITY };
        println!(
            "throughput: {:.0} evals/sec ({} evals, {:.3}s)",
            evals_per_sec, result.evaluations, secs
        );
    }
    if p.flag("gantt") {
        let report = full_report.as_ref().expect("computed above");
        let gantt = Gantt::build(&result.solution, report);
        print!("{}", gantt.render_ascii(&inst, 72));
        println!("utilization: {:.1}%", 100.0 * gantt.utilization());
    }
    if let Some(path) = p.get("trace") {
        let mut series = vec![trace.best_vs_time_series().renamed("best")];
        series.push(trace.current_cost_series().renamed("current"));
        mshc_trace::write_csv("x", &series).write_file(path).map_err(|e| format!("{path}: {e}"))?;
        println!("trace written to {path} ({} records)", trace.len());
    }
    Ok(())
}

fn cmd_compare(p: &Parsed) -> Result<(), String> {
    let inst = load_instance(p)?;
    let budget = budget(p)?;
    let names = [
        "se", "ga", "heft", "heft-ins", "cpop", "met", "mct", "olb", "min-min", "max-min",
        "random", "sa", "tabu",
    ];
    println!(
        "instance: {} tasks, {} machines, {} data items",
        inst.task_count(),
        inst.machine_count(),
        inst.data_count()
    );
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "algorithm",
        "makespan",
        budget.objective.label(),
        "iterations",
        "evals",
        "secs"
    );
    let mut rows: Vec<(String, f64)> = Vec::new();
    for name in names {
        let mut s = make_scheduler(p, name)?;
        let r = s.run(&inst, &budget, None);
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>12} {:>12} {:>9.3}",
            name,
            r.makespan,
            r.objective_value,
            r.iterations,
            r.evaluations,
            r.elapsed.as_secs_f64()
        );
        rows.push((name.to_string(), r.objective_value));
    }
    let best = rows.iter().min_by(|a, b| a.1.total_cmp(&b.1)).expect("non-empty");
    println!("best: {} ({:.2})", best.0, best.1);
    Ok(())
}

fn cmd_info(p: &Parsed) -> Result<(), String> {
    let inst = load_instance(p)?;
    let m = InstanceMetrics::compute(&inst);
    println!("tasks:         {}", m.tasks);
    println!("machines:      {}", m.machines);
    println!("data items:    {}", m.data_items);
    println!("connectivity:  {:.3} (data items per task)", m.connectivity);
    println!("heterogeneity: {:.3} (mean per-task CV of E)", m.heterogeneity);
    println!("ccr:           {:.3}", m.ccr);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&argv(&["bogus"])).is_err());
        assert!(dispatch(&argv(&[])).is_err());
    }

    #[test]
    fn run_requires_algo() {
        let e = dispatch(&argv(&["run"])).unwrap_err();
        assert!(e.contains("--algo"));
    }

    #[test]
    fn run_heft_on_generated_workload() {
        dispatch(&argv(&["run", "--algo", "heft", "--tasks", "20", "--machines", "4"])).unwrap();
    }

    #[test]
    fn run_se_small_budget() {
        dispatch(&argv(&[
            "run",
            "--algo",
            "se",
            "--tasks",
            "12",
            "--machines",
            "3",
            "--iters",
            "5",
            "--gantt",
        ]))
        .unwrap();
    }

    #[test]
    fn generate_and_run_roundtrip() {
        let dir = std::env::temp_dir().join("mshc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("wl.json");
        let file_s = file.to_str().unwrap();
        dispatch(&argv(&[
            "generate",
            "--tasks",
            "15",
            "--machines",
            "3",
            "--seed",
            "4",
            "--out",
            file_s,
        ]))
        .unwrap();
        dispatch(&argv(&["info", "--instance", file_s])).unwrap();
        dispatch(&argv(&["run", "--algo", "min-min", "--instance", file_s])).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_workload_classes_error() {
        let e = dispatch(&argv(&["info", "--connectivity", "extreme"])).unwrap_err();
        assert!(e.contains("connectivity"));
        let e = dispatch(&argv(&["info", "--heterogeneity", "none"])).unwrap_err();
        assert!(e.contains("heterogeneity"));
    }

    #[test]
    fn unknown_algo_errors() {
        let e = dispatch(&argv(&["run", "--algo", "quantum"])).unwrap_err();
        assert!(e.contains("quantum"));
    }

    #[test]
    fn objective_flag_parses_and_runs() {
        dispatch(&argv(&[
            "run",
            "--algo",
            "sa",
            "--tasks",
            "12",
            "--machines",
            "3",
            "--iters",
            "40",
            "--objective",
            "total-flowtime",
            "--report",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "run",
            "--algo",
            "se",
            "--tasks",
            "10",
            "--machines",
            "3",
            "--iters",
            "5",
            "--objective",
            "weighted:1,0.5,0.5",
        ]))
        .unwrap();
        let e = dispatch(&argv(&["run", "--algo", "se", "--objective", "fastest"])).unwrap_err();
        assert!(e.contains("objective"));
    }

    #[test]
    fn checkpoint_stride_flag_parses_and_runs() {
        // Stride is a pure cost knob; the run must succeed at extreme
        // strides and reject unparsable values.
        for stride in ["1", "3", "1000"] {
            dispatch(&argv(&[
                "run",
                "--algo",
                "se",
                "--tasks",
                "12",
                "--machines",
                "3",
                "--iters",
                "5",
                "--checkpoint-stride",
                stride,
                "--report",
            ]))
            .unwrap();
        }
        dispatch(&argv(&[
            "compare",
            "--tasks",
            "10",
            "--machines",
            "3",
            "--iters",
            "5",
            "--checkpoint-stride",
            "4",
        ]))
        .unwrap();
        let e = dispatch(&argv(&["run", "--algo", "sa", "--checkpoint-stride", "x"])).unwrap_err();
        assert!(e.contains("--checkpoint-stride"));
        // 0 is rejected rather than silently falling back to auto.
        let e = dispatch(&argv(&["run", "--algo", "sa", "--checkpoint-stride", "0"])).unwrap_err();
        assert!(e.contains("at least 1"));
    }

    #[test]
    fn budget_parser_applies_flags() {
        let p = parse(&argv(&["--iters", "7", "--checkpoint-stride", "9"]));
        let b = budget(&p).unwrap();
        assert_eq!(b.max_iterations, Some(7));
        assert_eq!(b.checkpoint_stride, Some(9));
        assert!(b.validate().is_ok());
        // No limits given: the loud default keeps the budget bounded.
        let b = budget(&parse(&argv(&[]))).unwrap();
        assert_eq!(b.max_iterations, Some(200));
        assert_eq!(b.checkpoint_stride, None);
    }

    #[test]
    fn threads_flag_sizes_the_pool() {
        dispatch(&argv(&[
            "run",
            "--algo",
            "heft",
            "--tasks",
            "10",
            "--machines",
            "3",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert_eq!(rayon::current_num_threads(), 2);
        let e = dispatch(&argv(&["info", "--threads", "abc"])).unwrap_err();
        assert!(e.contains("--threads"));
    }

    #[test]
    fn trace_file_written() {
        let dir = std::env::temp_dir().join("mshc_cli_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("t.csv");
        dispatch(&argv(&[
            "run",
            "--algo",
            "sa",
            "--tasks",
            "10",
            "--machines",
            "3",
            "--iters",
            "50",
            "--trace",
            file.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&file).unwrap();
        assert!(text.starts_with("x,best,current"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
