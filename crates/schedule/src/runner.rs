//! The common scheduler interface and run budgets.
//!
//! Every algorithm in the suite — simulated evolution (`mshc-core`), the
//! Wang et al. genetic algorithm (`mshc-ga`), and the constructive /
//! metaheuristic baselines (`mshc-heuristics`) — implements [`Scheduler`],
//! so the comparison harness (Figs 5–7), the CLI and the examples treat
//! them uniformly.
//!
//! [`RunBudget`] expresses the stopping criteria the paper uses:
//! iteration counts for Figs 3–4 and wall-clock time for the SE-vs-GA
//! races of Figs 5–7, plus an evaluation-count budget for deterministic
//! comparisons and a stall window ("no improvement for N iterations").
//! It also carries the [`ObjectiveKind`] to optimize, so the CLI and the
//! harnesses select objectives without touching the `Scheduler` trait.

use crate::encoding::Solution;
use crate::error::ScheduleError;
use crate::incremental::ScanStats;
use crate::objective::ObjectiveKind;
use mshc_platform::HcInstance;
use mshc_trace::Trace;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A shared, one-shot cooperative cancellation flag.
///
/// Clone the token, hand one copy to the budget
/// ([`RunBudget::with_cancel`]) and keep the other; calling
/// [`cancel`](CancelToken::cancel) from any thread asks the run to stop
/// at the next slice boundary. Cancellation is *cooperative*: searches
/// poll the token between [`step`](crate::SearchStep::step) slices —
/// never inside an evaluation — so evaluation counts stay exact and the
/// incumbent returned is always a complete, valid schedule.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fires the token; every clone observes the cancellation. One-shot:
    /// there is deliberately no way to un-fire.
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::Release);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

impl PartialEq for CancelToken {
    /// Identity equality: two tokens are equal iff they share the flag
    /// (a clone equals its original; two fresh tokens never compare
    /// equal even though both are unfired).
    fn eq(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.fired, &other.fired)
    }
}

/// Why a run stopped. Ordered by reporting precedence: a run that hit
/// the certified floor reports [`Floor`](Termination::Floor) even if a
/// deadline expired the same slice, a cancellation outranks deadlines,
/// and deadlines outrank ordinary budget exhaustion. Whatever the
/// variant, the result always carries the best incumbent and its
/// certificate gap — degraded termination is graceful, never an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The run finished its work with no limit hit: one-shot heuristics,
    /// or a steppable search drained by its driver without exhausting
    /// the budget.
    Completed,
    /// A classic budget limit (`max_iterations`, `max_evaluations`,
    /// `max_wall`, `max_stall`) stopped the run.
    Budget,
    /// A deadline (`deadline_evals` or `deadline_wall`) stopped the run.
    Deadline,
    /// A [`CancelToken`] fired and the run stopped at the next slice
    /// boundary.
    Cancelled,
    /// The incumbent reached the instance's certified lower bound — the
    /// solution is provably optimal.
    Floor,
}

impl Termination {
    /// Stable lowercase identifier used in reports, leaderboards and
    /// CSV cells.
    pub fn as_str(&self) -> &'static str {
        match self {
            Termination::Completed => "completed",
            Termination::Budget => "budget",
            Termination::Deadline => "deadline",
            Termination::Cancelled => "cancelled",
            Termination::Floor => "floor",
        }
    }
}

impl std::fmt::Display for Termination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stopping criteria plus the objective to optimize; a run stops as soon
/// as *any* set limit is reached. A fully `None` budget never stops —
/// constructive heuristics ignore budgets, iterative schedulers require
/// at least one limit ([`validate`](RunBudget::validate) enforces this).
#[derive(Debug, Clone, PartialEq)]
pub struct RunBudget {
    /// Maximum iterations (SE) / generations (GA).
    pub max_iterations: Option<u64>,
    /// Maximum number of full schedule evaluations.
    pub max_evaluations: Option<u64>,
    /// Maximum wall-clock time.
    pub max_wall: Option<Duration>,
    /// Stop after this many consecutive iterations without improving the
    /// best objective value.
    pub max_stall: Option<u64>,
    /// The objective iterative schedulers minimize (default: makespan,
    /// the paper's objective). One-shot constructive heuristics always
    /// build makespan-oriented schedules but report this objective's
    /// value alongside.
    pub objective: ObjectiveKind,
    /// Checkpoint stride for the incremental (suffix-replay) move
    /// evaluators the schedulers use. `None` (the default) selects the
    /// auto stride `⌈√k⌉`. A pure cost knob: results are bit-identical
    /// at every stride.
    pub checkpoint_stride: Option<usize>,
    /// Whether the move-scan fast path may bound-prune and splice
    /// (default `true`; the CLI's `--no-prune` escape hatch turns it
    /// off). Another pure cost knob: solutions, objective values and
    /// evaluation counts are bit-identical either way.
    pub prune: bool,
    /// Whether iterative searches may terminate as soon as the incumbent
    /// reaches the instance's certified lower bound
    /// ([`crate::InstanceBound`]) — the incumbent is then provably
    /// optimal, so further iterations cannot change it (default `true`;
    /// the CLI's `--no-early-stop` escape hatch turns it off). Early
    /// stop is observable only as *fewer* iterations/evaluations, never
    /// a different solution or objective value; runs that never reach
    /// the floor are bit-identical either way.
    pub early_stop: bool,
    /// Forces the GA back onto full tier-1 population evaluation instead
    /// of parent-primed prefix splicing (default `false`; the CLI's
    /// `--ga-full-eval` escape hatch turns it on). Another pure cost
    /// knob: splicing replays the exact fold a full pass would, so
    /// solutions, fitness values and evaluation counts are bit-identical
    /// either way.
    pub ga_full_eval: bool,
    /// *Deterministic* deadline: stop once this many full evaluations
    /// have been performed, reporting [`Termination::Deadline`]. Unlike
    /// `max_evaluations` (a budget), a deadline models an external
    /// request limit; both stop the run identically, the difference is
    /// how the termination is classified. Bit-reproducible — the
    /// testable deadline surface.
    pub deadline_evals: Option<u64>,
    /// *Wall-clock* deadline: stop once this much time has elapsed,
    /// reporting [`Termination::Deadline`]. Anytime mode — the result
    /// still carries the best incumbent and its certificate gap, but
    /// which iteration it stops at varies run-to-run, so wall deadlines
    /// never gate byte-compared artifacts.
    pub deadline_wall: Option<Duration>,
    /// Cooperative cancellation token, polled at slice boundaries
    /// (never inside an evaluation). `None` means not cancellable.
    pub cancel: Option<CancelToken>,
}

impl Default for RunBudget {
    fn default() -> RunBudget {
        RunBudget {
            max_iterations: None,
            max_evaluations: None,
            max_wall: None,
            max_stall: None,
            objective: ObjectiveKind::default(),
            checkpoint_stride: None,
            prune: true,
            early_stop: true,
            ga_full_eval: false,
            deadline_evals: None,
            deadline_wall: None,
            cancel: None,
        }
    }
}

impl RunBudget {
    /// Budget limited by iteration count only.
    pub fn iterations(n: u64) -> RunBudget {
        RunBudget { max_iterations: Some(n), ..Default::default() }
    }

    /// Budget limited by evaluation count only.
    pub fn evaluations(n: u64) -> RunBudget {
        RunBudget { max_evaluations: Some(n), ..Default::default() }
    }

    /// Budget limited by wall-clock time only.
    pub fn wall(d: Duration) -> RunBudget {
        RunBudget { max_wall: Some(d), ..Default::default() }
    }

    /// Adds a stall window to an existing budget.
    pub fn with_stall(mut self, n: u64) -> RunBudget {
        self.max_stall = Some(n);
        self
    }

    /// Sets the objective to optimize.
    pub fn with_objective(mut self, objective: ObjectiveKind) -> RunBudget {
        self.objective = objective;
        self
    }

    /// Sets the checkpoint stride for incremental move evaluation
    /// (`None` = auto `⌈√k⌉`).
    pub fn with_checkpoint_stride(mut self, stride: Option<usize>) -> RunBudget {
        self.checkpoint_stride = stride;
        self
    }

    /// Enables/disables the bounded+spliced move-scan fast path
    /// (default: on).
    pub fn with_prune(mut self, prune: bool) -> RunBudget {
        self.prune = prune;
        self
    }

    /// Enables/disables early termination at the certified lower bound
    /// (default: on).
    pub fn with_early_stop(mut self, early_stop: bool) -> RunBudget {
        self.early_stop = early_stop;
        self
    }

    /// Forces full tier-1 GA population evaluation (default: off, i.e.
    /// parent-primed prefix splicing on).
    pub fn with_ga_full_eval(mut self, ga_full_eval: bool) -> RunBudget {
        self.ga_full_eval = ga_full_eval;
        self
    }

    /// Sets the deterministic evaluation-count deadline
    /// ([`Termination::Deadline`] once `n` evaluations are done).
    pub fn with_deadline_evals(mut self, n: u64) -> RunBudget {
        self.deadline_evals = Some(n);
        self
    }

    /// Sets the wall-clock deadline ([`Termination::Deadline`] once `d`
    /// has elapsed). Anytime mode: not bit-reproducible.
    pub fn with_deadline_wall(mut self, d: Duration) -> RunBudget {
        self.deadline_wall = Some(d);
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> RunBudget {
        self.cancel = Some(token);
        self
    }

    /// Whether a search may stop now because its incumbent has reached
    /// the instance's certified floor: requires the knob on, a floor
    /// (searches only certify the makespan objective), and the floor
    /// actually reached. The shared early-termination test of every
    /// iterative scheduler in the suite.
    #[inline]
    pub fn floor_reached(&self, lower_bound: Option<f64>, incumbent: f64) -> bool {
        let hit = self.early_stop
            && lower_bound.is_some_and(|floor| incumbent.is_finite() && incumbent <= floor);
        if hit {
            // Every scheduler latches `early_stopped` on the first hit
            // and short-circuits later checks, so this registry bump
            // fires at most once per run.
            mshc_obs::add(mshc_obs::Counter::EarlyStops, 1);
        }
        hit
    }

    /// Whether any limit is set (budget limits or deadlines; a fired
    /// cancel token does not bound a budget — cancellation may never
    /// come).
    pub fn is_bounded(&self) -> bool {
        self.max_iterations.is_some()
            || self.max_evaluations.is_some()
            || self.max_wall.is_some()
            || self.max_stall.is_some()
            || self.deadline_evals.is_some()
            || self.deadline_wall.is_some()
    }

    /// Validates the budget for an iterative (anytime) scheduler: an
    /// all-`None` budget never stops, so at least one limit must be set;
    /// zero deadlines would fire before the first incumbent exists; and
    /// an already-fired cancel token is a reused one-shot token. The
    /// iterative schedulers and the CLI call this instead of silently
    /// running forever; one-shot constructive heuristics ignore budgets
    /// and need not validate.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        if self.deadline_evals == Some(0) {
            return Err(ScheduleError::InvalidDeadline { axis: "deadline_evals" });
        }
        if self.deadline_wall == Some(Duration::ZERO) {
            return Err(ScheduleError::InvalidDeadline { axis: "deadline_wall" });
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Err(ScheduleError::CancelledBeforeStart);
        }
        if self.is_bounded() {
            Ok(())
        } else {
            Err(ScheduleError::UnboundedBudget)
        }
    }

    /// True once any classic budget limit is hit (not deadlines — see
    /// [`halted`](RunBudget::halted) for the combined stopping test).
    pub fn exhausted(
        &self,
        iterations: u64,
        evaluations: u64,
        elapsed: Duration,
        stall: u64,
    ) -> bool {
        self.max_iterations.is_some_and(|m| iterations >= m)
            || self.max_evaluations.is_some_and(|m| evaluations >= m)
            || self.max_wall.is_some_and(|m| elapsed >= m)
            || self.max_stall.is_some_and(|m| stall >= m)
    }

    /// True once a deadline (evaluation-count or wall-clock) is hit.
    pub fn deadline_hit(&self, evaluations: u64, elapsed: Duration) -> bool {
        self.deadline_evals.is_some_and(|m| evaluations >= m)
            || self.deadline_wall.is_some_and(|m| elapsed >= m)
    }

    /// The combined stopping test every steppable loop uses: any budget
    /// limit or deadline hit.
    pub fn halted(&self, iterations: u64, evaluations: u64, elapsed: Duration, stall: u64) -> bool {
        self.exhausted(iterations, evaluations, elapsed, stall)
            || self.deadline_hit(evaluations, elapsed)
    }

    /// Polls the cancel token at a slice boundary, latching the result
    /// into the caller-held flag. The registry's `Cancellations` counter
    /// bumps exactly once per run — on the first observation — mirroring
    /// the `floor_reached`/`EarlyStops` latch pattern. Returns the
    /// latched state.
    pub fn observe_cancel(&self, latched: &mut bool) -> bool {
        if !*latched && self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            *latched = true;
            mshc_obs::add(mshc_obs::Counter::Cancellations, 1);
        }
        *latched
    }

    /// Classifies why a finished run stopped, applying the reporting
    /// precedence `Floor > Cancelled > Deadline > Budget > Completed`.
    /// Called once by each search's `result()` assembler with its final
    /// counters and latches.
    pub fn termination(
        &self,
        iterations: u64,
        evaluations: u64,
        elapsed: Duration,
        stall: u64,
        early_stopped: bool,
        cancelled: bool,
    ) -> Termination {
        if early_stopped {
            Termination::Floor
        } else if cancelled {
            Termination::Cancelled
        } else if self.deadline_hit(evaluations, elapsed) {
            Termination::Deadline
        } else if self.exhausted(iterations, evaluations, elapsed, stall) {
            Termination::Budget
        } else {
            Termination::Completed
        }
    }
}

/// Outcome of one scheduler run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The best solution found.
    pub solution: Solution,
    /// Its makespan (always reported, whatever the objective).
    pub makespan: f64,
    /// Its value under the budget's objective; equals `makespan` for the
    /// default makespan objective.
    pub objective_value: f64,
    /// Iterations (or generations) executed; 1 for one-shot heuristics.
    pub iterations: u64,
    /// Full schedule evaluations performed.
    pub evaluations: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Move-scan fast-path counters (all zero for schedulers that never
    /// scan moves incrementally). Like `elapsed`, a diagnostic: the
    /// pruned/spliced parts vary with the chunk grid and must not flow
    /// into deterministic artifacts.
    pub scan: ScanStats,
    /// The instance's certified makespan floor ([`crate::InstanceBound`]),
    /// `Some` only when the run optimized plain makespan (other
    /// objectives have no certificate). Identical across algorithms,
    /// budgets and thread counts — a property of the instance.
    pub lower_bound: Option<f64>,
    /// Optimality gap `objective_value / lower_bound` (`>= 1.0` by the
    /// certificate contract); `None` whenever `lower_bound` is.
    pub gap: Option<f64>,
    /// Whether the run terminated early because the incumbent reached
    /// the certified floor (implies the solution is provably optimal).
    pub early_stopped: bool,
    /// Why the run stopped (see [`Termination`] for the precedence).
    /// Always accompanied by the best incumbent — degraded termination
    /// is graceful, never an error.
    pub termination: Termination,
}

impl RunResult {
    /// Attaches the certificate fields to a result: the instance floor
    /// and gap when `objective` is plain makespan (the only certified
    /// objective), clearing them otherwise. One-shot heuristics and
    /// search `result()` assemblers share this so every construction
    /// site reports certificates identically.
    pub fn with_certificate(mut self, inst: &HcInstance, objective: ObjectiveKind) -> RunResult {
        self.lower_bound =
            objective.is_makespan().then(|| crate::InstanceBound::compute(inst).floor());
        self.gap = certified_gap(self.lower_bound, self.objective_value);
        self
    }
}

/// Gap of an objective value against an optional certified floor:
/// `Some(value / floor)` when a positive floor exists and the value is
/// finite, `None` otherwise. The single gap formula every reporting
/// site shares, so leaderboards, CSV rows and `RunResult`s agree bit
/// for bit.
#[inline]
pub fn certified_gap(lower_bound: Option<f64>, value: f64) -> Option<f64> {
    match lower_bound {
        Some(floor) if floor > 0.0 && value.is_finite() => Some(value / floor),
        _ => None,
    }
}

/// Scores `solution` under `objective` for reporting, reusing the known
/// `makespan` when the objective is plain makespan (no extra pass). Used
/// by one-shot constructive heuristics, which always build makespan-
/// oriented schedules but report the budget's objective alongside.
pub fn report_objective_value(
    inst: &HcInstance,
    solution: &Solution,
    makespan: f64,
    objective: ObjectiveKind,
) -> f64 {
    if objective.is_makespan() {
        makespan
    } else {
        crate::Evaluator::new(inst).objective_value(solution, &objective)
    }
}

/// A task matching-and-scheduling algorithm.
pub trait Scheduler {
    /// Short stable identifier used in figures, CSV columns and the CLI
    /// (e.g. `"se"`, `"ga"`, `"heft"`).
    fn name(&self) -> &str;

    /// Runs on `inst` under `budget`, optionally recording a per-iteration
    /// trace. Implementations must return a precedence-valid solution.
    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        trace: Option<&mut Trace>,
    ) -> RunResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let b = RunBudget::iterations(5);
        assert_eq!(b.max_iterations, Some(5));
        assert!(b.is_bounded());
        let b = RunBudget::evaluations(100).with_stall(10);
        assert_eq!(b.max_evaluations, Some(100));
        assert_eq!(b.max_stall, Some(10));
        let b = RunBudget::wall(Duration::from_millis(50));
        assert_eq!(b.max_wall, Some(Duration::from_millis(50)));
        assert!(!RunBudget::default().is_bounded());
        assert!(RunBudget::default().objective.is_makespan());
        let b = RunBudget::iterations(5).with_objective(ObjectiveKind::LoadBalance);
        assert_eq!(b.objective, ObjectiveKind::LoadBalance);
        assert!(b.is_bounded());
        let b = RunBudget::iterations(5).with_checkpoint_stride(Some(7));
        assert_eq!(b.checkpoint_stride, Some(7));
        assert_eq!(RunBudget::default().checkpoint_stride, None);
        assert!(!RunBudget::default().ga_full_eval, "splicing is the default");
        assert!(RunBudget::iterations(5).with_ga_full_eval(true).ga_full_eval);
    }

    #[test]
    fn validate_rejects_unbounded_budgets() {
        use crate::error::ScheduleError;
        assert_eq!(RunBudget::default().validate(), Err(ScheduleError::UnboundedBudget));
        assert!(RunBudget::iterations(1).validate().is_ok());
        assert!(RunBudget::evaluations(1).validate().is_ok());
        assert!(RunBudget::wall(Duration::from_millis(1)).validate().is_ok());
        assert!(RunBudget::default().with_stall(3).validate().is_ok());
        // Setting only the objective or stride does not bound a budget.
        let b = RunBudget::default()
            .with_objective(ObjectiveKind::TotalFlowtime)
            .with_checkpoint_stride(Some(4));
        assert!(b.validate().is_err());
    }

    #[test]
    fn exhaustion_each_axis() {
        let b = RunBudget::iterations(3);
        assert!(!b.exhausted(2, 0, Duration::ZERO, 0));
        assert!(b.exhausted(3, 0, Duration::ZERO, 0));

        let b = RunBudget::evaluations(10);
        assert!(!b.exhausted(99, 9, Duration::ZERO, 0));
        assert!(b.exhausted(0, 10, Duration::ZERO, 0));

        let b = RunBudget::wall(Duration::from_secs(1));
        assert!(!b.exhausted(0, 0, Duration::from_millis(999), 0));
        assert!(b.exhausted(0, 0, Duration::from_secs(1), 0));

        let b = RunBudget::default().with_stall(4);
        assert!(!b.exhausted(100, 100, Duration::from_secs(100), 3));
        assert!(b.exhausted(0, 0, Duration::ZERO, 4));
    }

    #[test]
    fn early_stop_knob_and_floor_test() {
        let b = RunBudget::iterations(5);
        assert!(b.early_stop, "early stop defaults on");
        assert!(!b.clone().with_early_stop(false).early_stop);
        // No floor (non-makespan objectives) never stops early.
        assert!(!b.floor_reached(None, 0.0));
        // Floor reached stops; above the floor keeps running.
        assert!(b.floor_reached(Some(10.0), 10.0));
        assert!(b.floor_reached(Some(10.0), 9.5));
        assert!(!b.floor_reached(Some(10.0), 10.5));
        // Knob off disables the test entirely.
        assert!(!b.clone().with_early_stop(false).floor_reached(Some(10.0), 10.0));
        // Non-finite incumbents never claim optimality.
        assert!(!b.floor_reached(Some(10.0), f64::NAN));
    }

    #[test]
    fn unbounded_never_exhausts() {
        let b = RunBudget::default();
        assert!(!b.exhausted(u64::MAX, u64::MAX, Duration::from_secs(1 << 40), u64::MAX));
    }

    #[test]
    fn cancel_token_fires_once_and_shares_state() {
        let token = CancelToken::new();
        let peer = token.clone();
        assert!(!token.is_cancelled());
        assert!(!peer.is_cancelled());
        peer.cancel();
        assert!(token.is_cancelled(), "clones share the flag");
        // Identity equality: clone == original, fresh != fresh.
        assert_eq!(token, peer);
        assert_ne!(CancelToken::new(), CancelToken::new());
    }

    #[test]
    fn deadlines_bound_and_validate() {
        // Deadlines alone bound a budget.
        let b = RunBudget::default().with_deadline_evals(10);
        assert!(b.is_bounded());
        assert!(b.validate().is_ok());
        let b = RunBudget::default().with_deadline_wall(Duration::from_millis(5));
        assert!(b.is_bounded());
        assert!(b.validate().is_ok());
        // Zero deadlines are rejected with the axis named.
        assert_eq!(
            RunBudget::default().with_deadline_evals(0).validate(),
            Err(ScheduleError::InvalidDeadline { axis: "deadline_evals" })
        );
        assert_eq!(
            RunBudget::default().with_deadline_wall(Duration::ZERO).validate(),
            Err(ScheduleError::InvalidDeadline { axis: "deadline_wall" })
        );
        // A pre-fired token is misuse even on an otherwise valid budget.
        let fired = CancelToken::new();
        fired.cancel();
        assert_eq!(
            RunBudget::iterations(5).with_cancel(fired).validate(),
            Err(ScheduleError::CancelledBeforeStart)
        );
        // An unfired token on a bounded budget is fine; a token alone
        // does not bound a budget.
        let token = CancelToken::new();
        assert!(RunBudget::iterations(5).with_cancel(token.clone()).validate().is_ok());
        assert_eq!(
            RunBudget::default().with_cancel(token).validate(),
            Err(ScheduleError::UnboundedBudget)
        );
    }

    #[test]
    fn deadline_hit_and_halted_each_axis() {
        let b = RunBudget::default().with_deadline_evals(10);
        assert!(!b.deadline_hit(9, Duration::ZERO));
        assert!(b.deadline_hit(10, Duration::ZERO));
        assert!(!b.exhausted(0, 10, Duration::ZERO, 0), "deadline is not a budget limit");
        assert!(b.halted(0, 10, Duration::ZERO, 0));
        let b = RunBudget::default().with_deadline_wall(Duration::from_millis(5));
        assert!(!b.deadline_hit(u64::MAX, Duration::from_millis(4)));
        assert!(b.deadline_hit(0, Duration::from_millis(5)));
        // halted() is the union of both stopping families.
        let b = RunBudget::iterations(3).with_deadline_evals(10);
        assert!(b.halted(3, 0, Duration::ZERO, 0), "budget side");
        assert!(b.halted(0, 10, Duration::ZERO, 0), "deadline side");
        assert!(!b.halted(2, 9, Duration::ZERO, 0));
    }

    #[test]
    fn observe_cancel_latches_once() {
        let token = CancelToken::new();
        let b = RunBudget::iterations(5).with_cancel(token.clone());
        let mut latched = false;
        assert!(!b.observe_cancel(&mut latched));
        token.cancel();
        assert!(b.observe_cancel(&mut latched));
        assert!(latched);
        // Latched stays true on subsequent polls.
        assert!(b.observe_cancel(&mut latched));
        // A budget without a token never cancels.
        let mut latched = false;
        assert!(!RunBudget::iterations(5).observe_cancel(&mut latched));
    }

    #[test]
    fn termination_precedence() {
        let b = RunBudget::iterations(3).with_deadline_evals(10);
        let t = Duration::ZERO;
        // Floor outranks everything.
        assert_eq!(b.termination(3, 10, t, 0, true, true), Termination::Floor);
        // Cancelled outranks deadlines and budget.
        assert_eq!(b.termination(3, 10, t, 0, false, true), Termination::Cancelled);
        // Deadline outranks budget.
        assert_eq!(b.termination(3, 10, t, 0, false, false), Termination::Deadline);
        // Budget alone.
        assert_eq!(b.termination(3, 9, t, 0, false, false), Termination::Budget);
        // Nothing hit: completed.
        assert_eq!(b.termination(2, 9, t, 0, false, false), Termination::Completed);
        // Labels are stable.
        assert_eq!(Termination::Deadline.as_str(), "deadline");
        assert_eq!(Termination::Cancelled.to_string(), "cancelled");
    }
}
