//! The validated HC system: machines + `E` + `Tr`.

use crate::error::PlatformError;
use crate::machine::{ArchClass, Machine, MachineId};
use crate::matrix::Matrix;
use crate::pair::{pair_count, pair_index};
use mshc_taskgraph::{DataId, TaskId};
use serde::{Deserialize, Serialize};

/// A heterogeneous suite of fully connected machines together with the
/// paper's two cost matrices.
///
/// Invariants (checked at construction):
/// * at least one machine;
/// * `E` is `l × k` with strictly positive finite entries;
/// * `Tr` is `l(l-1)/2 × p` with finite non-negative entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HcSystem {
    machines: Vec<Machine>,
    exec: Matrix,
    transfer: Matrix,
}

impl HcSystem {
    /// Builds and validates a system.
    ///
    /// * `exec` — `l × k` execution-time matrix `E`;
    /// * `transfer` — `l(l-1)/2 × p` transfer-time matrix `Tr` (may have 0
    ///   columns if the task graph has no data items).
    pub fn new(
        machines: Vec<Machine>,
        exec: Matrix,
        transfer: Matrix,
    ) -> Result<HcSystem, PlatformError> {
        let l = machines.len();
        if l == 0 {
            return Err(PlatformError::NoMachines);
        }
        if exec.rows() != l {
            return Err(PlatformError::ExecShape {
                expected: (l, exec.cols()),
                actual: exec.shape(),
            });
        }
        let expected_pairs = pair_count(l);
        if transfer.rows() != expected_pairs {
            return Err(PlatformError::TransferShape {
                expected: (expected_pairs, transfer.cols()),
                actual: transfer.shape(),
            });
        }
        for r in 0..exec.rows() {
            for c in 0..exec.cols() {
                let v = exec.get(r, c);
                if !v.is_finite() {
                    return Err(PlatformError::InvalidCost {
                        matrix: "E",
                        row: r,
                        col: c,
                        value: v,
                    });
                }
                if v <= 0.0 {
                    return Err(PlatformError::NonPositiveExecution {
                        machine: r,
                        task: c,
                        value: v,
                    });
                }
            }
        }
        for r in 0..transfer.rows() {
            for c in 0..transfer.cols() {
                let v = transfer.get(r, c);
                if !v.is_finite() || v < 0.0 {
                    return Err(PlatformError::InvalidCost {
                        matrix: "Tr",
                        row: r,
                        col: c,
                        value: v,
                    });
                }
            }
        }
        Ok(HcSystem { machines, exec, transfer })
    }

    /// Convenience: `l` anonymous machines with round-robin architecture
    /// classes.
    pub fn with_anonymous_machines(
        l: usize,
        exec: Matrix,
        transfer: Matrix,
    ) -> Result<HcSystem, PlatformError> {
        let machines = (0..l)
            .map(|i| {
                Machine::new(MachineId::from_usize(i), ArchClass::ALL[i % ArchClass::ALL.len()])
            })
            .collect();
        HcSystem::new(machines, exec, transfer)
    }

    /// Number of machines `l`.
    #[inline]
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Number of tasks `k` the system is dimensioned for.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.exec.cols()
    }

    /// Number of data items `p` the system is dimensioned for.
    #[inline]
    pub fn data_count(&self) -> usize {
        self.transfer.cols()
    }

    /// Machine descriptions.
    #[inline]
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// Iterates over machine ids `m_0 .. m_{l-1}`.
    pub fn machine_ids(&self) -> impl ExactSizeIterator<Item = MachineId> + Clone {
        (0..self.machines.len() as u32).map(MachineId::new)
    }

    /// The raw execution-time matrix `E`.
    #[inline]
    pub fn exec_matrix(&self) -> &Matrix {
        &self.exec
    }

    /// The raw transfer-time matrix `Tr`.
    #[inline]
    pub fn transfer_matrix(&self) -> &Matrix {
        &self.transfer
    }

    /// `E[m][t]`: execution time of task `t` on machine `m`.
    #[inline]
    pub fn exec_time(&self, m: MachineId, t: TaskId) -> f64 {
        self.exec.get(m.index(), t.index())
    }

    /// Time to move data item `d` from machine `from` to machine `to`;
    /// zero when `from == to` (co-located tasks share memory in the
    /// paper's model).
    #[inline]
    pub fn transfer_time(&self, d: DataId, from: MachineId, to: MachineId) -> f64 {
        if from == to {
            0.0
        } else {
            self.transfer.get(pair_index(self.machines.len(), from, to), d.index())
        }
    }

    /// The best-matching machine for `t` (minimal `E[·][t]`, ties to the
    /// smallest id) — the paper's "best-matching machine" used both by the
    /// `O_i` precomputation (§4.3) and the `Y` restriction (§4.5).
    pub fn best_machine(&self, t: TaskId) -> MachineId {
        let (row, _) = self.exec.col_min(t.index()).expect("at least one machine");
        MachineId::from_usize(row)
    }

    /// All machines ranked by ascending execution time for `t`. The first
    /// `y` entries are the task's "Y best-matching machines" (§4.5).
    pub fn machine_ranking(&self, t: TaskId) -> Vec<MachineId> {
        self.exec.col_ranking(t.index()).into_iter().map(MachineId::from_usize).collect()
    }

    /// Mean execution time of `t` across machines — the task weight used
    /// by HEFT-style ranking heuristics.
    pub fn mean_exec_time(&self, t: TaskId) -> f64 {
        self.exec.col_mean(t.index()).expect("at least one machine")
    }

    /// Mean transfer time of data item `d` across all machine pairs
    /// (zero if the system has a single machine).
    pub fn mean_transfer_time(&self, d: DataId) -> f64 {
        if self.transfer.rows() == 0 {
            0.0
        } else {
            self.transfer.col_mean(d.index()).unwrap_or(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_machine_system() -> HcSystem {
        // 2 machines, 3 tasks, 2 data items.
        let exec = Matrix::from_rows(&[vec![10.0, 20.0, 5.0], vec![15.0, 8.0, 6.0]]);
        let transfer = Matrix::from_rows(&[vec![3.0, 4.0]]);
        HcSystem::with_anonymous_machines(2, exec, transfer).unwrap()
    }

    #[test]
    fn dimensions() {
        let s = two_machine_system();
        assert_eq!(s.machine_count(), 2);
        assert_eq!(s.task_count(), 3);
        assert_eq!(s.data_count(), 2);
        assert_eq!(s.machine_ids().count(), 2);
        assert_eq!(s.machines().len(), 2);
    }

    #[test]
    fn exec_and_transfer_lookup() {
        let s = two_machine_system();
        assert_eq!(s.exec_time(MachineId::new(0), TaskId::new(1)), 20.0);
        assert_eq!(s.exec_time(MachineId::new(1), TaskId::new(1)), 8.0);
        let d = DataId::new(1);
        assert_eq!(s.transfer_time(d, MachineId::new(0), MachineId::new(1)), 4.0);
        assert_eq!(s.transfer_time(d, MachineId::new(1), MachineId::new(0)), 4.0, "symmetric");
        assert_eq!(s.transfer_time(d, MachineId::new(0), MachineId::new(0)), 0.0, "co-located");
    }

    #[test]
    fn best_machine_and_ranking() {
        let s = two_machine_system();
        assert_eq!(s.best_machine(TaskId::new(0)), MachineId::new(0));
        assert_eq!(s.best_machine(TaskId::new(1)), MachineId::new(1));
        assert_eq!(s.machine_ranking(TaskId::new(2)), vec![MachineId::new(0), MachineId::new(1)]);
    }

    #[test]
    fn means() {
        let s = two_machine_system();
        assert!((s.mean_exec_time(TaskId::new(0)) - 12.5).abs() < 1e-12);
        assert!((s.mean_transfer_time(DataId::new(0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_machine_system() {
        let exec = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let transfer = Matrix::filled(0, 3, 0.0);
        let s = HcSystem::with_anonymous_machines(1, exec, transfer).unwrap();
        assert_eq!(s.machine_count(), 1);
        assert_eq!(s.transfer_time(DataId::new(0), MachineId::new(0), MachineId::new(0)), 0.0);
        assert_eq!(s.mean_transfer_time(DataId::new(0)), 0.0);
    }

    #[test]
    fn rejects_no_machines() {
        let r = HcSystem::new(vec![], Matrix::filled(0, 2, 1.0), Matrix::filled(0, 0, 0.0));
        assert_eq!(r.unwrap_err(), PlatformError::NoMachines);
    }

    #[test]
    fn rejects_bad_exec_shape() {
        let exec = Matrix::filled(3, 2, 1.0); // 3 rows but 2 machines
        let r = HcSystem::with_anonymous_machines(2, exec, Matrix::filled(1, 0, 0.0));
        assert!(matches!(r.unwrap_err(), PlatformError::ExecShape { .. }));
    }

    #[test]
    fn rejects_bad_transfer_shape() {
        let exec = Matrix::filled(3, 2, 1.0);
        let tr = Matrix::filled(1, 4, 0.0); // needs 3 pairs for l=3
        let r = HcSystem::with_anonymous_machines(3, exec, tr);
        assert!(matches!(r.unwrap_err(), PlatformError::TransferShape { .. }));
    }

    #[test]
    fn rejects_nonpositive_exec() {
        let exec = Matrix::from_rows(&[vec![1.0, 0.0]]);
        let r = HcSystem::with_anonymous_machines(1, exec, Matrix::filled(0, 0, 0.0));
        assert!(matches!(
            r.unwrap_err(),
            PlatformError::NonPositiveExecution { machine: 0, task: 1, .. }
        ));
    }

    #[test]
    fn rejects_nan_costs() {
        let exec = Matrix::from_rows(&[vec![1.0], vec![f64::NAN]]);
        let r = HcSystem::with_anonymous_machines(2, exec, Matrix::filled(1, 0, 0.0));
        assert!(matches!(r.unwrap_err(), PlatformError::InvalidCost { matrix: "E", .. }));

        let exec = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let tr = Matrix::from_rows(&[vec![-1.0]]);
        let r = HcSystem::with_anonymous_machines(2, exec, tr);
        assert!(matches!(r.unwrap_err(), PlatformError::InvalidCost { matrix: "Tr", .. }));
    }
}
