//! Cross-crate property tests: the suite's core invariants under
//! randomized instances, solutions and operator sequences.

use mshc::ga::chromosome::{order_valid_range, Chromosome};
use mshc::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a workload spec over the full taxonomy at property-test
/// scale.
fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        2usize..30,
        1usize..6,
        prop_oneof![Just(Connectivity::Low), Just(Connectivity::Medium), Just(Connectivity::High)],
        prop_oneof![
            Just(Heterogeneity::Low),
            Just(Heterogeneity::Medium),
            Just(Heterogeneity::High)
        ],
        0.0f64..1.5,
        any::<u64>(),
    )
        .prop_map(|(tasks, machines, connectivity, heterogeneity, ccr, seed)| WorkloadSpec {
            tasks,
            machines,
            connectivity,
            heterogeneity,
            ccr,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The analytic evaluator and the discrete-event replay agree on
    /// every random (instance, solution) pair — the suite's correctness
    /// anchor.
    #[test]
    fn analytic_equals_des_replay(spec in spec_strategy(), sol_seed in any::<u64>()) {
        let inst = spec.generate();
        let mut rng = ChaCha8Rng::seed_from_u64(sol_seed);
        let sol = mshc::schedule::random_solution(&inst, &mut rng);
        let analytic = Evaluator::new(&inst).report(&sol);
        let sim = replay(&inst, &sol).expect("valid solutions never deadlock");
        prop_assert!((analytic.makespan - sim.makespan).abs() < 1e-9);
        for t in inst.graph().tasks() {
            prop_assert!((analytic.finish_of(t) - sim.finish_of(t)).abs() < 1e-9);
        }
    }

    /// Random solutions satisfy the full string invariant, and any
    /// sequence of valid-range moves preserves it.
    #[test]
    fn valid_range_moves_preserve_invariant(
        spec in spec_strategy(),
        sol_seed in any::<u64>(),
        moves in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..40),
    ) {
        let inst = spec.generate();
        let g = inst.graph();
        let mut rng = ChaCha8Rng::seed_from_u64(sol_seed);
        let mut sol = mshc::schedule::random_solution(&inst, &mut rng);
        sol.check(g).unwrap();
        for (traw, praw, mraw) in moves {
            let t = TaskId::new(traw % inst.task_count() as u32);
            let (lo, hi) = sol.valid_range(g, t);
            let pos = lo + (praw as usize) % (hi - lo + 1);
            let m = MachineId::new(mraw % inst.machine_count() as u32);
            sol.move_task(g, t, pos, m).unwrap();
        }
        prop_assert!(sol.check(g).is_ok());
    }

    /// GA crossover preserves the linear-extension invariant for every
    /// cut point on random parents.
    #[test]
    fn ga_crossover_preserves_validity(spec in spec_strategy(), seeds in any::<(u64, u64)>()) {
        let inst = spec.generate();
        let a = Chromosome::random(&inst, &mut ChaCha8Rng::seed_from_u64(seeds.0));
        let b = Chromosome::random(&inst, &mut ChaCha8Rng::seed_from_u64(seeds.1));
        for cut in 0..=inst.task_count() {
            let order = a.crossover_order(&b, cut);
            prop_assert!(inst.graph().is_linear_extension(&order), "cut {cut}");
            let matching = a.crossover_matching(&b, cut);
            prop_assert!(matching.iter().all(|m| m.index() < inst.machine_count()));
        }
    }

    /// `order_valid_range` brackets exactly the insertions that keep the
    /// order a linear extension.
    #[test]
    fn order_valid_range_is_tight(spec in spec_strategy(), seed in any::<u64>()) {
        let inst = spec.generate();
        let g = inst.graph();
        let c = Chromosome::random(&inst, &mut ChaCha8Rng::seed_from_u64(seed));
        let t = c.order[seed as usize % c.order.len()];
        let (lo, hi) = order_valid_range(g, &c.order, t);
        for pos in 0..c.order.len() {
            let mut probe = c.clone();
            let mut removed = probe.order.clone();
            removed.retain(|&x| x != t);
            removed.insert(pos, t);
            probe.order = removed;
            let valid = g.is_linear_extension(&probe.order);
            prop_assert_eq!(valid, (lo..=hi).contains(&pos), "pos {} range [{},{}]", pos, lo, hi);
        }
    }

    /// Goodness values derived from any schedule lie in (0, 1].
    #[test]
    fn goodness_in_unit_interval(spec in spec_strategy(), sol_seed in any::<u64>()) {
        let inst = spec.generate();
        let optimal = mshc::core::optimal_costs(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(sol_seed);
        let sol = mshc::schedule::random_solution(&inst, &mut rng);
        let report = Evaluator::new(&inst).report(&sol);
        for t in inst.graph().tasks() {
            let gi = mshc::core::goodness(optimal[t.index()], report.finish_of(t));
            prop_assert!(gi > 0.0 && gi <= 1.0, "{} -> {}", t, gi);
        }
    }

    /// Workload generation is a pure function of the spec.
    #[test]
    fn generation_is_pure(spec in spec_strategy()) {
        prop_assert_eq!(spec.generate(), spec.generate());
    }

    /// Constructive heuristics produce valid, replay-consistent schedules
    /// on arbitrary taxonomy points.
    #[test]
    fn constructive_heuristics_always_valid(spec in spec_strategy()) {
        let inst = spec.generate();
        let budget = RunBudget::default();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(HeftScheduler::new()),
            Box::new(CpopScheduler::new()),
            Box::new(ListScheduler::new(ListPolicy::MinMin)),
            Box::new(ListScheduler::new(ListPolicy::MaxMin)),
            Box::new(ListScheduler::new(ListPolicy::Mct)),
        ];
        for s in schedulers.iter_mut() {
            let r = s.run(&inst, &budget, None);
            prop_assert!(r.solution.check(inst.graph()).is_ok(), "{}", s.name());
            let sim = replay(&inst, &r.solution).expect("no deadlock");
            prop_assert!((sim.makespan - r.makespan).abs() < 1e-9, "{}", s.name());
        }
    }
}
