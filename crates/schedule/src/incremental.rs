//! Incremental prefix-cached move scoring — the third tier of the
//! evaluation stack.
//!
//! Every move-scan hot path in the suite (SE's §4.5 allocation ripple,
//! tabu's sampled neighborhood, SA's proposal loop) scores thousands of
//! candidates of the same shape: *the base solution with one task moved*.
//! A full pass costs O(k + p) per candidate, yet everything before the
//! first string position a move disturbs is unchanged — the solution
//! string is a linear extension, so prefix timing state is reusable.
//!
//! [`IncrementalEvaluator`] walks the base once ([`prime`]), checkpointing
//! resumable frontier state every `C` positions (machine-ready vector,
//! per-task finish slab, [`ObjectiveState`] accumulators), and then
//! scores any single-task move by resuming from the nearest checkpoint at
//! or before the first affected position and replaying only from there —
//! **exact, not approximate**: the replay performs the same float
//! operations in the same order as a full pass over the mutated string,
//! so scores are bit-identical to [`Evaluator::objective_value`] for
//! every incremental-capable objective (all [`crate::ObjectiveKind`]s;
//! the property tests pin this down across strides).
//!
//! The default stride `C = ⌈√k⌉` balances checkpoint memory/priming cost
//! (`O(√k)` checkpoints of `O(l)` floats) against resume cost (`≤ C`
//! fast-forwarded positions per score). Stride 1 checkpoints every
//! position; stride ≥ k degenerates to replay-from-zero. The mutated
//! string is never materialized: segments are read through an index
//! remapping of the base, so scoring performs no `Solution` clones or
//! `move_task` calls at all.
//!
//! [`prime`]: IncrementalEvaluator::prime
//! [`Evaluator::objective_value`]: crate::Evaluator::objective_value

use crate::encoding::{Segment, Solution};
use crate::objective::{Objective, ObjectiveState};
use crate::snapshot::EvalSnapshot;
use mshc_platform::{HcInstance, MachineId};
use mshc_taskgraph::TaskId;
use std::borrow::Cow;

/// Returns the default checkpoint stride for a `k`-task string: `⌈√k⌉`.
pub fn auto_stride(tasks: usize) -> usize {
    ((tasks as f64).sqrt().ceil() as usize).max(1)
}

/// Scores single-task moves against a primed base solution by suffix
/// replay from strided checkpoints.
///
/// ```
/// use mshc_platform::{HcInstance, HcSystem, MachineId, Matrix};
/// use mshc_schedule::{Evaluator, IncrementalEvaluator, ObjectiveKind, Solution};
/// use mshc_taskgraph::{TaskGraphBuilder, TaskId};
///
/// let mut b = TaskGraphBuilder::new(2);
/// b.add_edge(0, 1).unwrap();
/// let g = b.build().unwrap();
/// let sys = HcSystem::with_anonymous_machines(
///     2,
///     Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 2.0]]),
///     Matrix::from_rows(&[vec![6.0]]),
/// ).unwrap();
/// let inst = HcInstance::new(g, sys).unwrap();
/// let base = Solution::from_order(
///     inst.graph(), 2,
///     &[TaskId::new(0), TaskId::new(1)],
///     &[MachineId::new(0), MachineId::new(0)],
/// ).unwrap();
///
/// let mut inc = IncrementalEvaluator::new(&inst);
/// inc.prime(&base);
/// // Base: both on m0 => 3 + 4 = 7.
/// assert_eq!(inc.base_score(&ObjectiveKind::Makespan), 7.0);
/// // Move task 1 to m1: 3 + 6 (transfer) + 2 = 11 — scored without
/// // materializing the mutated solution.
/// let score = inc.score_move(TaskId::new(1), 1, MachineId::new(1), &ObjectiveKind::Makespan);
/// assert_eq!(score, 11.0);
/// // The base stays primed; re-scoring the incumbent placement is free.
/// assert_eq!(inc.score_move(TaskId::new(1), 1, MachineId::new(0), &ObjectiveKind::Makespan), 7.0);
/// ```
#[derive(Debug)]
pub struct IncrementalEvaluator<'a> {
    /// Owned when built straight from an instance; borrowed when many
    /// evaluators share one snapshot (the batch path).
    snap: Cow<'a, EvalSnapshot>,
    /// Requested stride; `None` resolves to [`auto_stride`] at prime time.
    stride_override: Option<usize>,
    /// Stride in effect for the current priming.
    stride: usize,
    /// Owned copy of the primed base (`clone_from`-reused across primes).
    base: Option<Solution>,
    /// Pristine per-task finish times of the base walk.
    base_finish: Vec<f64>,
    // Checkpoints: entry `j` captures the frontier state *before*
    // processing string position `j * stride`.
    ckpt_avail: Vec<f64>,
    ckpt_busy: Vec<f64>,
    ckpt_max: Vec<f64>,
    ckpt_sum: Vec<f64>,
    /// Accumulators after the full base walk (serves [`Self::base_score`]).
    end_state: ObjectiveState,
    // Replay scratch.
    machine_avail: Vec<f64>,
    state: ObjectiveState,
    /// Working finish times; equal to `base_finish` between calls (the
    /// replay dirties only suffix entries and restores them afterwards).
    finish: Vec<f64>,
    dirty: Vec<u32>,
    /// Move scorings performed ([`Self::prime`] is uncounted cache
    /// building, mirroring how batch arenas keep the evaluation axis
    /// independent of chunking).
    evaluations: u64,
}

impl<'a> IncrementalEvaluator<'a> {
    /// Creates an evaluator for one instance, flattening it into an owned
    /// [`EvalSnapshot`].
    pub fn new(inst: &HcInstance) -> IncrementalEvaluator<'static> {
        IncrementalEvaluator::from_snap(Cow::Owned(EvalSnapshot::new(inst)))
    }

    /// Creates an evaluator borrowing a shared snapshot — the cheap
    /// constructor worker threads use.
    pub fn with_snapshot(snap: &'a EvalSnapshot) -> IncrementalEvaluator<'a> {
        IncrementalEvaluator::from_snap(Cow::Borrowed(snap))
    }

    fn from_snap(snap: Cow<'a, EvalSnapshot>) -> IncrementalEvaluator<'a> {
        let k = snap.task_count();
        let l = snap.machine_count();
        IncrementalEvaluator {
            snap,
            stride_override: None,
            stride: 1,
            base: None,
            base_finish: vec![0.0; k],
            ckpt_avail: Vec::new(),
            ckpt_busy: Vec::new(),
            ckpt_max: Vec::new(),
            ckpt_sum: Vec::new(),
            end_state: ObjectiveState::new(l),
            machine_avail: vec![0.0; l],
            state: ObjectiveState::new(l),
            finish: vec![0.0; k],
            dirty: Vec::new(),
            evaluations: 0,
        }
    }

    /// Sets the checkpoint stride: `None` selects the auto default
    /// `⌈√k⌉`, `Some(c)` checkpoints every `max(c, 1)` positions. Takes
    /// effect at the next [`prime`](Self::prime); the stride never
    /// changes scores, only the memory/resume-cost trade-off.
    pub fn set_stride(&mut self, stride: Option<usize>) {
        self.stride_override = stride;
    }

    /// The stride in effect for the current priming.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The snapshot this evaluator walks.
    #[inline]
    pub fn snapshot(&self) -> &EvalSnapshot {
        &self.snap
    }

    /// The primed base solution, if any.
    #[inline]
    pub fn base(&self) -> Option<&Solution> {
        self.base.as_ref()
    }

    /// Move scorings performed so far (primes are uncounted).
    #[inline]
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Walks `base` once, storing its finish times and a checkpoint of
    /// the frontier state (machine-ready vector + objective accumulators)
    /// every [`stride`](Self::stride) positions. O(k + p) plus
    /// O(k/stride × l) checkpoint writes.
    pub fn prime(&mut self, base: &Solution) {
        let snap = self.snap.as_ref();
        let k = snap.task_count();
        let l = snap.machine_count();
        debug_assert_eq!(base.len(), k, "solution/instance mismatch");
        debug_assert_eq!(base.machine_count(), l, "solution/instance machine mismatch");
        self.stride = self.stride_override.unwrap_or_else(|| auto_stride(k)).max(1);
        match &mut self.base {
            Some(b) => b.clone_from(base),
            none => *none = Some(base.clone()),
        }
        self.ckpt_avail.clear();
        self.ckpt_busy.clear();
        self.ckpt_max.clear();
        self.ckpt_sum.clear();
        self.machine_avail.fill(0.0);
        self.state.reset(l);
        for (i, seg) in base.segments().iter().enumerate() {
            if i % self.stride == 0 {
                self.ckpt_avail.extend_from_slice(&self.machine_avail);
                self.ckpt_busy.extend_from_slice(self.state.machine_busy());
                self.ckpt_max.push(self.state.max_finish());
                self.ckpt_sum.push(self.state.finish_sum());
            }
            let (t, m) = (seg.task, seg.machine);
            let exec = snap.exec_time(m, t);
            let (_, finish) = snap.schedule_step(
                t,
                m,
                exec,
                |src| base.machine_of(src),
                &self.finish,
                &self.machine_avail,
            );
            self.finish[t.index()] = finish;
            self.machine_avail[m.index()] = finish;
            self.state.fold(m, finish, exec);
        }
        self.base_finish.copy_from_slice(&self.finish);
        self.end_state.clone_from(&self.state);
    }

    /// The primed base's own score under `obj` — a free accumulator read,
    /// not a pass.
    ///
    /// # Panics
    /// If the evaluator was never primed, or `obj` does not support
    /// incremental scoring.
    pub fn base_score(&self, obj: &dyn Objective) -> f64 {
        assert!(self.base.is_some(), "prime() the evaluator first");
        obj.finalize(&self.end_state)
    }

    /// Scores *base with task `t` moved to string position `new_pos` on
    /// machine `new_m`* (remove-then-insert semantics, exactly
    /// [`Solution::move_task`]) under `obj`, replaying only from the
    /// nearest checkpoint at or before the first affected position.
    ///
    /// The result is bit-identical to a full
    /// [`crate::Evaluator::objective_value`] pass over the materialized
    /// mutated solution. The base stays primed, so any number of moves
    /// can be scored back to back.
    ///
    /// # Panics
    /// If the evaluator was never primed, or `obj` does not support
    /// incremental scoring. `new_pos` must lie inside `t`'s valid range
    /// on the base (callers enumerate candidates from
    /// [`Solution::valid_range`]); positions outside it yield a
    /// precedence-inconsistent replay and a meaningless score.
    pub fn score_move(
        &mut self,
        t: TaskId,
        new_pos: usize,
        new_m: MachineId,
        obj: &dyn Objective,
    ) -> f64 {
        let IncrementalEvaluator {
            snap,
            stride,
            base,
            base_finish,
            ckpt_avail,
            ckpt_busy,
            ckpt_max,
            ckpt_sum,
            machine_avail,
            state,
            finish,
            dirty,
            evaluations,
            ..
        } = self;
        let snap = snap.as_ref();
        let base = base.as_ref().expect("prime() the evaluator first");
        let k = base.len();
        let l = snap.machine_count();
        assert!(new_pos < k, "move position out of range");
        debug_assert!(new_m.index() < l, "machine out of range");

        let old_pos = base.position_of(t);
        let first = old_pos.min(new_pos);
        // Resume from the nearest checkpoint at or before `first`.
        let ci = first / *stride;
        machine_avail.copy_from_slice(&ckpt_avail[ci * l..(ci + 1) * l]);
        state.load(ckpt_max[ci], ckpt_sum[ci], ci * *stride, &ckpt_busy[ci * l..(ci + 1) * l]);

        // Fast-forward the unchanged positions [ci·stride, first): their
        // timing is the base's, so the frontier folds from stored finish
        // times without touching predecessor lists.
        for seg in &base.segments()[ci * *stride..first] {
            let (u, mu) = (seg.task, seg.machine);
            let f = base_finish[u.index()];
            machine_avail[mu.index()] = f;
            state.fold(mu, f, snap.exec_time(mu, u));
        }

        // Replay the disturbed suffix [first, k) of the *mutated* string,
        // read through an index remapping of the base (no clone, no
        // move_task).
        let seg_at = |i: usize| -> Segment {
            if i == new_pos {
                Segment { task: t, machine: new_m }
            } else if old_pos < new_pos && (old_pos..new_pos).contains(&i) {
                base.segment_at(i + 1)
            } else if new_pos < old_pos && i > new_pos && i <= old_pos {
                base.segment_at(i - 1)
            } else {
                base.segment_at(i)
            }
        };
        for i in first..k {
            let seg = seg_at(i);
            let (u, mu) = (seg.task, seg.machine);
            let exec = snap.exec_time(mu, u);
            let (_, f) = snap.schedule_step(
                u,
                mu,
                exec,
                |src| if src == t { new_m } else { base.machine_of(src) },
                finish,
                machine_avail,
            );
            finish[u.index()] = f;
            dirty.push(u.raw());
            machine_avail[mu.index()] = f;
            state.fold(mu, f, exec);
        }
        let score = obj.finalize(state);
        // Restore the pristine base finish times (dirty entries only).
        for &u in dirty.iter() {
            finish[u as usize] = base_finish[u as usize];
        }
        dirty.clear();
        *evaluations += 1;
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::init::random_solution;
    use crate::objective::ObjectiveKind;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_taskgraph::gen::{layered, LayeredConfig};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_instance(tasks: usize, machines: usize, seed: u64) -> HcInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = LayeredConfig { tasks, mean_width: 4, edge_prob: 0.5, skip_prob: 0.05 };
        let graph = layered(&cfg, &mut rng).unwrap();
        let exec = Matrix::from_fn(machines, tasks, |_, _| rng.gen_range(10.0..100.0));
        let pairs = machines * (machines - 1) / 2;
        let transfer = Matrix::from_fn(pairs, graph.data_count(), |_, _| rng.gen_range(1.0..30.0));
        let sys = HcSystem::with_anonymous_machines(machines, exec, transfer).unwrap();
        HcInstance::new(graph, sys).unwrap()
    }

    #[test]
    fn auto_stride_is_ceil_sqrt() {
        assert_eq!(auto_stride(0), 1);
        assert_eq!(auto_stride(1), 1);
        assert_eq!(auto_stride(4), 2);
        assert_eq!(auto_stride(5), 3);
        assert_eq!(auto_stride(100), 10);
        assert_eq!(auto_stride(101), 11);
    }

    #[test]
    fn score_move_is_bit_identical_to_full_eval_at_every_stride() {
        let inst = random_instance(24, 4, 3);
        let g = inst.graph();
        let k = inst.task_count();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut scalar = Evaluator::new(&inst);
        let weighted = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.3, balance: 0.7 };
        for stride in [Some(1), Some(2), Some(5), None, Some(k), Some(k + 17)] {
            let base = random_solution(&inst, &mut rng);
            let mut inc = IncrementalEvaluator::new(&inst);
            inc.set_stride(stride);
            inc.prime(&base);
            for _ in 0..40 {
                let t = TaskId::new(rng.gen_range(0..k as u32));
                let (lo, hi) = base.valid_range(g, t);
                let pos = rng.gen_range(lo..=hi);
                let m = MachineId::new(rng.gen_range(0..4));
                let mut cand = base.clone();
                cand.move_task(g, t, pos, m).unwrap();
                for kind in ObjectiveKind::BASIC.into_iter().chain([weighted]) {
                    let fast = inc.score_move(t, pos, m, &kind);
                    let slow = scalar.objective_value(&cand, &kind);
                    assert_eq!(fast, slow, "{} stride {stride:?}", kind.label());
                }
            }
        }
    }

    #[test]
    fn base_score_matches_full_eval_and_incumbent_move() {
        let inst = random_instance(15, 3, 4);
        let g = inst.graph();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let base = random_solution(&inst, &mut rng);
        let mut inc = IncrementalEvaluator::new(&inst);
        inc.prime(&base);
        let mut scalar = Evaluator::new(&inst);
        for kind in ObjectiveKind::BASIC {
            assert_eq!(inc.base_score(&kind), scalar.objective_value(&base, &kind));
        }
        // Re-placing a task at its incumbent position/machine is the base.
        let t = TaskId::new(7);
        let _ = g;
        let score =
            inc.score_move(t, base.position_of(t), base.machine_of(t), &ObjectiveKind::Makespan);
        assert_eq!(score, inc.base_score(&ObjectiveKind::Makespan));
    }

    #[test]
    fn repriming_tracks_a_moving_base() {
        // SA's shape: accept moves, re-prime, keep scoring.
        let inst = random_instance(18, 3, 6);
        let g = inst.graph();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut current = random_solution(&inst, &mut rng);
        let mut inc = IncrementalEvaluator::new(&inst);
        let mut scalar = Evaluator::new(&inst);
        inc.prime(&current);
        for _ in 0..60 {
            let t = TaskId::new(rng.gen_range(0..18));
            let (lo, hi) = current.valid_range(g, t);
            let pos = rng.gen_range(lo..=hi);
            let m = MachineId::new(rng.gen_range(0..3));
            let fast = inc.score_move(t, pos, m, &ObjectiveKind::Makespan);
            let mut cand = current.clone();
            cand.move_task(g, t, pos, m).unwrap();
            assert_eq!(fast, scalar.makespan(&cand));
            if rng.gen::<f64>() < 0.4 {
                current = cand;
                inc.prime(&current);
            }
        }
        assert_eq!(inc.evaluations(), 60, "one scoring per move, primes uncounted");
    }

    #[test]
    fn shared_snapshot_matches_owned() {
        let inst = random_instance(12, 3, 8);
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let base = random_solution(&inst, &mut rng);
        let mut owned = IncrementalEvaluator::new(&inst);
        let mut borrowed = IncrementalEvaluator::with_snapshot(&snap);
        owned.prime(&base);
        borrowed.prime(&base);
        assert_eq!(owned.snapshot(), borrowed.snapshot());
        assert_eq!(owned.base(), Some(&base));
        let t = TaskId::new(5);
        let (lo, _) = base.valid_range(inst.graph(), t);
        let a = owned.score_move(t, lo, MachineId::new(0), &ObjectiveKind::Makespan);
        let b = borrowed.score_move(t, lo, MachineId::new(0), &ObjectiveKind::Makespan);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "prime()")]
    fn score_move_requires_priming() {
        let inst = random_instance(6, 2, 10);
        let mut inc = IncrementalEvaluator::new(&inst);
        let _ = inc.score_move(TaskId::new(0), 0, MachineId::new(0), &ObjectiveKind::Makespan);
    }

    #[test]
    fn single_task_instance_works() {
        let g = mshc_taskgraph::TaskGraphBuilder::new(1).build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::from_rows(&[vec![5.0], vec![3.0]]),
            Matrix::filled(1, 0, 0.0),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let base =
            Solution::from_order(inst.graph(), 2, &[TaskId::new(0)], &[MachineId::new(0)]).unwrap();
        let mut inc = IncrementalEvaluator::new(&inst);
        inc.prime(&base);
        assert_eq!(inc.base_score(&ObjectiveKind::Makespan), 5.0);
        assert_eq!(
            inc.score_move(TaskId::new(0), 0, MachineId::new(1), &ObjectiveKind::Makespan),
            3.0
        );
    }
}
