//! Quick terminal line plots, enough to eyeball the paper's figure shapes
//! without leaving the terminal.

use crate::series::Series;
use std::fmt::Write as _;

/// Fixed-size character-grid plot of one or more series.
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    width: usize,
    height: usize,
    title: String,
}

/// Glyphs assigned to series in order.
const GLYPHS: &[u8] = b"*o+x#@%&";

/// Widens a degenerate (zero-range) axis interval symmetrically so the
/// plot scale stays finite and well-conditioned: ±5% of the magnitude
/// for a nonzero constant, ±0.5 around zero.
fn pad_degenerate(lo: f64, hi: f64) -> (f64, f64) {
    if hi - lo > 0.0 {
        return (lo, hi);
    }
    let pad = if lo.abs() > 0.0 { lo.abs() * 0.05 } else { 0.5 };
    (lo - pad, hi + pad)
}

impl AsciiPlot {
    /// Creates a plot canvas; `width`/`height` are character cells.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> AsciiPlot {
        assert!(width >= 16 && height >= 4, "plot too small to be legible");
        AsciiPlot { width, height, title: title.into() }
    }

    /// Renders the series onto the canvas with a legend and axis labels.
    pub fn render(&self, series: &[Series]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let bounds = series.iter().filter_map(Series::bounds).fold(
            (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY),
            |acc, b| (acc.0.min(b.0), acc.1.max(b.1), acc.2.min(b.2), acc.3.max(b.3)),
        );
        if !bounds.0.is_finite() {
            out.push_str("(no data)\n");
            return out;
        }
        let (x0, x1, y0, y1) = bounds;
        // A zero-range axis (a constant-valued series, or a single
        // point) must not collapse the scale to f64::MIN_POSITIVE: the
        // flat line would pin to the bottom row under identical axis
        // labels, and any sub-ulp residue in `y - y0` would explode past
        // the grid. Pad the degenerate axis so the line renders mid-plot
        // between two honest labels.
        let (x0, x1) = pad_degenerate(x0, x1);
        let (y0, y1) = pad_degenerate(y0, y1);
        let xr = x1 - x0;
        let yr = y1 - y0;
        let mut grid = vec![b' '; self.width * self.height];
        for (si, s) in series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in s.points() {
                let cx = (((x - x0) / xr) * (self.width - 1) as f64).round() as usize;
                let cy = (((y - y0) / yr) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy; // y grows upward
                grid[row * self.width + cx] = glyph;
            }
        }
        for r in 0..self.height {
            let line = &grid[r * self.width..(r + 1) * self.width];
            let y_here = y1 - (r as f64 / (self.height - 1) as f64) * (y1 - y0);
            let _ = writeln!(out, "{y_here:>12.2} |{}|", String::from_utf8_lossy(line));
        }
        let _ = writeln!(
            out,
            "{:>12} +{}+\n{:>12}  x: {:.2} .. {:.2}",
            "",
            "-".repeat(self.width),
            "",
            x0,
            x1
        );
        for (si, s) in series.iter().enumerate() {
            let _ = writeln!(out, "  {} = {}", GLYPHS[si % GLYPHS.len()] as char, s.name());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_and_legend() {
        let s = Series::from_points("cost", (0..20).map(|i| (i as f64, (20 - i) as f64)).collect());
        let plot = AsciiPlot::new("fig3b", 40, 10);
        let art = plot.render(&[s]);
        assert!(art.contains("## fig3b"));
        assert!(art.contains("* = cost"));
        assert!(art.contains('*'));
        assert!(art.contains("x: 0.00 .. 19.00"));
    }

    #[test]
    fn empty_series_is_handled() {
        let plot = AsciiPlot::new("empty", 30, 5);
        assert!(plot.render(&[]).contains("(no data)"));
        assert!(plot.render(&[Series::new("e")]).contains("(no data)"));
    }

    #[test]
    fn multiple_series_get_distinct_glyphs() {
        let a = Series::from_points("se", vec![(0.0, 1.0), (1.0, 0.5)]);
        let b = Series::from_points("ga", vec![(0.0, 2.0), (1.0, 1.5)]);
        let art = AsciiPlot::new("cmp", 30, 8).render(&[a, b]);
        assert!(art.contains("* = se"));
        assert!(art.contains("o = ga"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_canvas_rejected() {
        let _ = AsciiPlot::new("t", 5, 2);
    }

    #[test]
    fn constant_series_renders_mid_plot_with_distinct_labels() {
        let s = Series::from_points("flat", vec![(0.0, 3.0), (1.0, 3.0), (2.0, 3.0)]);
        let art = AsciiPlot::new("flat", 20, 5).render(&[s]);
        // The padded scale places the flat line on the middle row, not
        // pinned to the bottom one.
        let rows: Vec<&str> = art.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(rows.len(), 5);
        assert!(rows[2].contains('*'), "flat line on the middle row:\n{art}");
        assert!(!rows[4].contains('*'), "not pinned to the bottom row:\n{art}");
        // And the y-axis labels bracket the constant instead of
        // repeating it on every row.
        assert!(art.contains("3.15"), "padded top label:\n{art}");
        assert!(art.contains("2.85"), "padded bottom label:\n{art}");
    }

    #[test]
    fn single_point_series_renders_inside_the_grid() {
        let s = Series::from_points("dot", vec![(4.0, -7.0)]);
        let art = AsciiPlot::new("dot", 20, 5).render(&[s]);
        assert!(art.contains('*'), "{art}");
    }

    #[test]
    fn constant_zero_series_pads_to_a_unit_band() {
        let s = Series::from_points("zero", vec![(0.0, 0.0), (1.0, 0.0)]);
        let art = AsciiPlot::new("zero", 20, 5).render(&[s]);
        assert!(art.contains("0.50"), "{art}");
        assert!(art.contains("-0.50"), "{art}");
    }
}
