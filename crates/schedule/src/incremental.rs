//! Incremental prefix-cached move scoring — the third tier of the
//! evaluation stack.
//!
//! Every move-scan hot path in the suite (SE's §4.5 allocation ripple,
//! tabu's sampled neighborhood, SA's proposal loop) scores thousands of
//! candidates of the same shape: *the base solution with one task moved*.
//! A full pass costs O(k + p) per candidate, yet everything before the
//! first string position a move disturbs is unchanged — the solution
//! string is a linear extension, so prefix timing state is reusable.
//!
//! [`IncrementalEvaluator`] walks the base once ([`prime`]), checkpointing
//! resumable frontier state every `C` positions (machine-ready vector,
//! per-task finish slab, [`ObjectiveState`] accumulators), and then
//! scores any single-task move by resuming from the nearest checkpoint at
//! or before the first affected position and replaying only from there —
//! **exact, not approximate**: the replay performs the same float
//! operations in the same order as a full pass over the mutated string,
//! so scores are bit-identical to [`Evaluator::objective_value`] for
//! every incremental-capable objective (all [`crate::ObjectiveKind`]s;
//! the property tests pin this down across strides).
//!
//! The default stride `C = ⌈√k⌉` balances checkpoint memory/priming cost
//! (`O(√k)` checkpoints of `O(l)` floats) against resume cost (`≤ C`
//! fast-forwarded positions per score). Stride 1 checkpoints every
//! position; stride ≥ k degenerates to replay-from-zero. The mutated
//! string is never materialized: segments are read through an index
//! remapping of the base, so scoring performs no `Solution` clones or
//! `move_task` calls at all.
//!
//! On top of the suffix replay sits the **bounded + reconvergent fast
//! path** ([`score_move_bounded`]): the caller's best-so-far score rides
//! along and the replay is abandoned once a monotone
//! [`lower bound`](crate::Objective::lower_bound) — fed by the running
//! accumulators, the critical-task influence cone, per-task
//! remaining-critical-path tails and per-machine load floors — reaches
//! it ([`MoveScore::Pruned`]); independently, a replay whose frontier
//! bitwise re-converges with the base walk at a checkpoint boundary
//! splices precomputed suffix aggregates instead of walking the tail.
//! Both cuts are *selection-exact*: pruned candidates are provably
//! unable to strictly beat the bound (and every scan in the suite
//! breaks ties toward the earlier candidate), spliced scores are
//! bit-identical, and each scoring counts as exactly one evaluation
//! whether or not it was cut.
//!
//! [`prime`]: IncrementalEvaluator::prime
//! [`score_move_bounded`]: IncrementalEvaluator::score_move_bounded
//! [`Evaluator::objective_value`]: crate::Evaluator::objective_value

use crate::encoding::{Segment, Solution};
use crate::objective::{BoundHints, Objective, ObjectiveState, SuffixView};
use crate::snapshot::EvalSnapshot;
use mshc_obs as obs;
use mshc_platform::{HcInstance, MachineId};
use mshc_taskgraph::TaskId;
use std::borrow::Cow;

/// Returns the default checkpoint stride for a `k`-task string: `⌈√k⌉`.
pub fn auto_stride(tasks: usize) -> usize {
    ((tasks as f64).sqrt().ceil() as usize).max(1)
}

/// Outcome of one bounded move scoring
/// ([`IncrementalEvaluator::score_move_bounded`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MoveScore {
    /// The candidate's exact objective value — bit-identical to a full
    /// evaluation pass over the materialized mutated solution.
    Exact(f64),
    /// The replay was abandoned: a monotone lower bound on the
    /// candidate's score reached the caller's bound, so the true score
    /// is provably `>= bound` and the candidate can never *strictly
    /// beat* a scan's best-so-far of `bound`. Every scan in the suite
    /// selects by strict improvement with earliest-index tie-breaking —
    /// a candidate that merely ties the incumbent loses — so pruning at
    /// `>= bound` commits exactly the selections an unbounded scan
    /// commits.
    Pruned,
}

impl MoveScore {
    /// The exact score, or `None` if the candidate was pruned.
    #[inline]
    pub fn exact(self) -> Option<f64> {
        match self {
            MoveScore::Exact(s) => Some(s),
            MoveScore::Pruned => None,
        }
    }

    /// Whether the candidate was pruned.
    #[inline]
    pub fn is_pruned(self) -> bool {
        matches!(self, MoveScore::Pruned)
    }
}

/// Counters of the bounded/spliced move-scan fast path. Scored counts
/// are deterministic (one per scored candidate, pruned or not — the
/// evaluation-count contract); pruned/spliced counts are diagnostics
/// that legitimately vary with chunking and bounds, so they must never
/// flow into deterministic artifacts (leaderboards, traces).
///
/// The exact bump sites that feed these per-run counters also mirror
/// into the process-wide [`mshc_obs`] registry (`ScanScored`,
/// `ScanPruned`, `ScanSpliced` and the population axes), so the
/// registry's view can never drift from `ScanStats` — same sites, same
/// semantics, and the same fraction accessors on
/// [`mshc_obs::DeterministicPlane`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Move scorings performed (pruned candidates included).
    pub scored: u64,
    /// Scorings abandoned early by the bound cut.
    pub pruned: u64,
    /// Scorings completed early by a reconvergence splice.
    pub spliced: u64,
    /// Population children scored through the parent-primed path (exact
    /// clones and suffix replays; the GA axis). Unlike pruned/spliced
    /// diagnostics from bounded scans, the population counters are
    /// deterministic: routing is a pure function of the chromosomes, so
    /// they are bit-identical at any thread count.
    pub suffixed: u64,
    /// String positions *not* replayed across population scorings: the
    /// shared parent prefix of each suffix replay, the whole string of
    /// an exact clone, and any tail cut off by a reconvergence splice.
    pub prefix_reused: u64,
    /// Total string positions across all population children scored
    /// (children × string length), full-evaluation fallbacks included —
    /// the denominator of [`Self::prefix_reuse_fraction`].
    pub suffix_total: u64,
}

impl ScanStats {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: ScanStats) {
        self.scored += other.scored;
        self.pruned += other.pruned;
        self.spliced += other.spliced;
        self.suffixed += other.suffixed;
        self.prefix_reused += other.prefix_reused;
        self.suffix_total += other.suffix_total;
    }

    /// Fraction of scorings cut by the bound (0 when nothing scored).
    pub fn pruned_fraction(&self) -> f64 {
        if self.scored == 0 {
            0.0
        } else {
            self.pruned as f64 / self.scored as f64
        }
    }

    /// Fraction of scorings finished by a splice (0 when nothing scored).
    pub fn spliced_fraction(&self) -> f64 {
        if self.scored == 0 {
            0.0
        } else {
            self.spliced as f64 / self.scored as f64
        }
    }

    /// Fraction of population-scoring string positions served from the
    /// parent's primed prefix instead of being replayed (0 when no
    /// population was scored). Deterministic at any thread count.
    pub fn prefix_reuse_fraction(&self) -> f64 {
        if self.suffix_total == 0 {
            0.0
        } else {
            self.prefix_reused as f64 / self.suffix_total as f64
        }
    }
}

/// Scores single-task moves against a primed base solution by suffix
/// replay from strided checkpoints.
///
/// ```
/// use mshc_platform::{HcInstance, HcSystem, MachineId, Matrix};
/// use mshc_schedule::{Evaluator, IncrementalEvaluator, ObjectiveKind, Solution};
/// use mshc_taskgraph::{TaskGraphBuilder, TaskId};
///
/// let mut b = TaskGraphBuilder::new(2);
/// b.add_edge(0, 1).unwrap();
/// let g = b.build().unwrap();
/// let sys = HcSystem::with_anonymous_machines(
///     2,
///     Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 2.0]]),
///     Matrix::from_rows(&[vec![6.0]]),
/// ).unwrap();
/// let inst = HcInstance::new(g, sys).unwrap();
/// let base = Solution::from_order(
///     inst.graph(), 2,
///     &[TaskId::new(0), TaskId::new(1)],
///     &[MachineId::new(0), MachineId::new(0)],
/// ).unwrap();
///
/// let mut inc = IncrementalEvaluator::new(&inst);
/// inc.prime(&base);
/// // Base: both on m0 => 3 + 4 = 7.
/// assert_eq!(inc.base_score(&ObjectiveKind::Makespan), 7.0);
/// // Move task 1 to m1: 3 + 6 (transfer) + 2 = 11 — scored without
/// // materializing the mutated solution.
/// let score = inc.score_move(TaskId::new(1), 1, MachineId::new(1), &ObjectiveKind::Makespan);
/// assert_eq!(score, 11.0);
/// // The base stays primed; re-scoring the incumbent placement is free.
/// assert_eq!(inc.score_move(TaskId::new(1), 1, MachineId::new(0), &ObjectiveKind::Makespan), 7.0);
/// ```
#[derive(Debug)]
pub struct IncrementalEvaluator<'a> {
    /// Owned when built straight from an instance; borrowed when many
    /// evaluators share one snapshot (the batch path).
    snap: Cow<'a, EvalSnapshot>,
    /// Requested stride; `None` resolves to [`auto_stride`] at prime time.
    stride_override: Option<usize>,
    /// Stride in effect for the current priming.
    stride: usize,
    /// Owned copy of the primed base (`clone_from`-reused across primes).
    base: Option<Solution>,
    /// Pristine per-task finish times of the base walk.
    base_finish: Vec<f64>,
    // Checkpoints: entry `j` captures the frontier state *before*
    // processing string position `j * stride`.
    ckpt_avail: Vec<f64>,
    ckpt_busy: Vec<f64>,
    ckpt_max: Vec<f64>,
    ckpt_sum: Vec<f64>,
    /// Accumulators after the full base walk (serves [`Self::base_score`]
    /// and the identity splice).
    end_state: ObjectiveState,
    // Suffix aggregates: entry `j` aggregates the base walk over string
    // positions `[j * stride, k)` — what a reconvergent replay splices
    // instead of walking the tail.
    sfx_max: Vec<f64>,
    sfx_sum: Vec<f64>,
    sfx_busy: Vec<f64>,
    /// Latest base string position holding a consumer of each task
    /// (0 when the task has no consumers); a replay may only splice once
    /// it has passed every consumer of every timing it perturbed.
    last_consumer: Vec<u32>,
    /// One past the last base string position scheduled on each machine
    /// (0 = machine unused). A machine whose last use is before a
    /// checkpoint boundary hosts no suffix task there, so its frontier
    /// entry cannot influence the tail — the reconvergence test skips
    /// it.
    last_use: Vec<u32>,
    /// Total busy time of the primed base (feeds the load-balance bound
    /// hint).
    base_total_busy: f64,
    /// Cheapest execution time of each task over all machines
    /// (instance-level; computed once at construction).
    min_exec: Vec<f64>,
    /// Conservative deflation factor `1 − O(k)·ε` applied to every
    /// derived (as opposed to directly folded) pending-work floor —
    /// always to the floor's **whole magnitude** (`(f + tail) · deflate`,
    /// never `f + tail·deflate`): the computed timing chain can absorb
    /// up to half an ulp of its *running value* per addition, so a
    /// margin scaled to anything smaller could overshoot the final
    /// computed makespan and prune a candidate the exact scan keeps.
    deflate: f64,
    /// Scan-global cutoff: a certified lower bound on the exact score of
    /// *every* candidate this evaluator can be asked to score (the
    /// instance's [`crate::InstanceBound`] floor, under the makespan
    /// objective). Once a caller's running best reaches it, no candidate
    /// can strictly improve, so every further bounded scoring
    /// instant-prunes without replaying a single position. Default
    /// `-inf` (no cutoff); a pure cost knob with the same ties-lose
    /// safety argument as every other bound cut here.
    scan_floor: f64,
    /// Lower bound (raw, undeflated — see `deflate`) on the remaining
    /// critical path below each task: once `u` finishes at `f`, no
    /// schedule — the base or any single-move mutation of it — can
    /// finish before `f + tail[u]` in real arithmetic (transfers bounded
    /// by zero, descendants by their cheapest machine). This is what
    /// lets the makespan bound prune *early*, not just once the running
    /// max itself crosses the bound.
    tail: Vec<f64>,
    /// Pending-work floor at each checkpoint (mirrors `ckpt_max` etc.).
    ckpt_pending: Vec<f64>,
    /// Influence cone of the base walk's critical (max-finish) task:
    /// its DAG ancestors and machine-order predecessors, transitively.
    /// A move of a task *outside* the cone onto a machine with no cone
    /// task after the insertion point provably recomputes the critical
    /// task bit-identically — the candidate's makespan is at least the
    /// base makespan before a single position is replayed.
    in_cone: Vec<bool>,
    /// One past the last base string position of a cone task on each
    /// machine (0 = none).
    cone_last: Vec<u32>,
    /// One past the base string position of each task's machine-order
    /// predecessor (0 = first on its machine); prime-time scratch for
    /// the cone closure.
    prev_on_machine: Vec<u32>,
    // Replay scratch.
    machine_avail: Vec<f64>,
    /// Per-machine execution time still to be folded by the current
    /// bounded replay (mutated assignment). `avail[m] + remaining[m]`
    /// floors machine `m`'s final frontier — and therefore the final
    /// makespan — and is monotone along the fold.
    remaining_busy: Vec<f64>,
    state: ObjectiveState,
    /// Working finish times; equal to `base_finish` between calls (the
    /// replay dirties only suffix entries and restores them afterwards).
    finish: Vec<f64>,
    dirty: Vec<u32>,
    /// Move scorings performed ([`Self::prime`] is uncounted cache
    /// building, mirroring how batch arenas keep the evaluation axis
    /// independent of chunking).
    evaluations: u64,
    /// Scorings abandoned by the bound cut.
    pruned: u64,
    /// Scorings completed by a reconvergence splice.
    spliced: u64,
    /// Whether bounded scorings may abandon candidates (the exactness of
    /// returned scores never depends on this).
    pruning: bool,
    /// Whether replays may splice precomputed suffix aggregates on
    /// reconvergence (bit-exact either way).
    splicing: bool,
    /// Whether the current priming built the pruning structures (tails,
    /// cone, checkpoint floors) — disabled primings skip that work, so
    /// scoring must not read the stale arrays.
    prune_ready: bool,
    /// Whether the current priming built the splice structures (suffix
    /// aggregates, consumer/machine-use tables).
    splice_ready: bool,
}

impl<'a> IncrementalEvaluator<'a> {
    /// Creates an evaluator for one instance, flattening it into an owned
    /// [`EvalSnapshot`].
    pub fn new(inst: &HcInstance) -> IncrementalEvaluator<'static> {
        IncrementalEvaluator::from_snap(Cow::Owned(EvalSnapshot::new(inst)))
    }

    /// Creates an evaluator borrowing a shared snapshot — the cheap
    /// constructor worker threads use.
    pub fn with_snapshot(snap: &'a EvalSnapshot) -> IncrementalEvaluator<'a> {
        IncrementalEvaluator::from_snap(Cow::Borrowed(snap))
    }

    fn from_snap(snap: Cow<'a, EvalSnapshot>) -> IncrementalEvaluator<'a> {
        let k = snap.task_count();
        let l = snap.machine_count();
        let min_exec: Vec<f64> = (0..k)
            .map(|t| {
                let cheapest = (0..l)
                    .map(|m| snap.exec_time(MachineId::from_usize(m), TaskId::from_usize(t)))
                    .fold(f64::INFINITY, f64::min);
                // Clamp: degenerate instances (no machines, negative
                // times) must never inflate a lower bound.
                if cheapest.is_finite() {
                    cheapest.max(0.0)
                } else {
                    0.0
                }
            })
            .collect();
        IncrementalEvaluator {
            snap,
            stride_override: None,
            stride: 1,
            base: None,
            base_finish: vec![0.0; k],
            ckpt_avail: Vec::new(),
            ckpt_busy: Vec::new(),
            ckpt_max: Vec::new(),
            ckpt_sum: Vec::new(),
            end_state: ObjectiveState::new(l),
            sfx_max: Vec::new(),
            sfx_sum: Vec::new(),
            sfx_busy: Vec::new(),
            last_consumer: vec![0; k],
            last_use: vec![0; l],
            base_total_busy: 0.0,
            min_exec,
            deflate: 1.0 - (2 * k + 16) as f64 * f64::EPSILON,
            scan_floor: f64::NEG_INFINITY,
            tail: vec![0.0; k],
            ckpt_pending: Vec::new(),
            in_cone: vec![false; k],
            cone_last: vec![0; l],
            prev_on_machine: vec![0; k],
            machine_avail: vec![0.0; l],
            remaining_busy: vec![0.0; l],
            state: ObjectiveState::new(l),
            finish: vec![0.0; k],
            dirty: Vec::new(),
            evaluations: 0,
            pruned: 0,
            spliced: 0,
            pruning: true,
            splicing: true,
            prune_ready: false,
            splice_ready: false,
        }
    }

    /// Sets the checkpoint stride: `None` selects the auto default
    /// `⌈√k⌉`, `Some(c)` checkpoints every `max(c, 1)` positions. Takes
    /// effect at the next [`prime`](Self::prime); the stride never
    /// changes scores, only the memory/resume-cost trade-off.
    pub fn set_stride(&mut self, stride: Option<usize>) {
        self.stride_override = stride;
    }

    /// The stride in effect for the current priming.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The snapshot this evaluator walks.
    #[inline]
    pub fn snapshot(&self) -> &EvalSnapshot {
        &self.snap
    }

    /// The primed base solution, if any.
    #[inline]
    pub fn base(&self) -> Option<&Solution> {
        self.base.as_ref()
    }

    /// Move scorings performed so far (primes are uncounted).
    #[inline]
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Counters of the bounded/spliced fast path: every scoring, plus
    /// how many were cut by the bound or finished by a splice.
    #[inline]
    pub fn stats(&self) -> ScanStats {
        ScanStats {
            scored: self.evaluations,
            pruned: self.pruned,
            spliced: self.spliced,
            ..ScanStats::default()
        }
    }

    /// Enables/disables the bound cut in
    /// [`score_move_bounded`](Self::score_move_bounded). Off, every
    /// scoring replays to completion and returns [`MoveScore::Exact`] —
    /// the `--no-prune` ablation path. Never changes any returned exact
    /// score. Disabling takes effect immediately; enabling takes effect
    /// at the next [`prime`](Self::prime) (which builds the bound
    /// structures only when the flag is on).
    pub fn set_pruning(&mut self, on: bool) {
        self.pruning = on;
    }

    /// Enables/disables reconvergence splicing. Splices are bit-exact,
    /// so this is a pure cost knob (off = the ablation baseline).
    /// Disabling takes effect immediately; enabling takes effect at the
    /// next [`prime`](Self::prime).
    pub fn set_splicing(&mut self, on: bool) {
        self.splicing = on;
    }

    /// Sets the scan-global cutoff: a certified lower bound on the exact
    /// score of **every** candidate this evaluator will be asked to
    /// score — the instance's [`crate::InstanceBound`] floor under the
    /// makespan objective (callers must not set it for other
    /// objectives, whose scores the makespan floor does not bound).
    /// Once a bounded scoring's `bound` (the caller's running best)
    /// drops to the floor, the candidate is pruned before a single
    /// position is replayed: its exact score is at least the floor,
    /// hence at least the bound, and ties lose everywhere in the suite.
    /// Honored only while pruning is enabled; takes effect immediately.
    /// Another pure cost knob — solutions, objective values and
    /// evaluation counts are bit-identical with or without it.
    pub fn set_scan_floor(&mut self, floor: f64) {
        self.scan_floor = floor;
    }

    /// Walks `base` once, storing its finish times, a checkpoint of the
    /// frontier state (machine-ready vector + objective accumulators)
    /// every [`stride`](Self::stride) positions, and — for the
    /// reconvergence splice — per-checkpoint suffix aggregates plus the
    /// latest-consumer position of every task. O(k + p) plus
    /// O(k/stride × l) checkpoint/suffix writes.
    pub fn prime(&mut self, base: &Solution) {
        let snap = self.snap.as_ref();
        let k = snap.task_count();
        let l = snap.machine_count();
        debug_assert_eq!(base.len(), k, "solution/instance mismatch");
        debug_assert_eq!(base.machine_count(), l, "solution/instance machine mismatch");
        self.stride = self.stride_override.unwrap_or_else(|| auto_stride(k)).max(1);
        match &mut self.base {
            Some(b) => b.clone_from(base),
            none => *none = Some(base.clone()),
        }
        // Remaining-critical-path tails, walked in reverse string order
        // (a linear extension, so every consumer is final before its
        // producer is read): after `u` finishes, at least its cheapest
        // consumer chain still has to run, transfers bounded by zero.
        // Stored raw; every floor derived from a tail deflates the whole
        // `finish + tail` sum (see the `deflate` field) so the noted
        // floor never overshoots the final *computed* makespan.
        //
        // All fast-path structures are built only for the flags in
        // effect now (SA's per-acceptance re-primes and the --no-prune
        // ablation skip them); `prune_ready`/`splice_ready` keep a
        // later flag flip from reading stale arrays.
        self.prune_ready = self.pruning;
        self.splice_ready = self.splicing;
        if self.pruning {
            self.tail.clear();
            self.tail.resize(k, 0.0);
            for seg in base.segments().iter().rev() {
                let u = seg.task;
                let through = self.min_exec[u.index()] + self.tail[u.index()];
                for (src, _) in snap.preds(u) {
                    if through > self.tail[src.index()] {
                        self.tail[src.index()] = through;
                    }
                }
            }
        }
        self.ckpt_avail.clear();
        self.ckpt_busy.clear();
        self.ckpt_max.clear();
        self.ckpt_sum.clear();
        self.ckpt_pending.clear();
        self.machine_avail.fill(0.0);
        self.state.reset(l);
        for (i, seg) in base.segments().iter().enumerate() {
            if i % self.stride == 0 {
                self.ckpt_avail.extend_from_slice(&self.machine_avail);
                self.ckpt_busy.extend_from_slice(self.state.machine_busy());
                self.ckpt_max.push(self.state.max_finish());
                self.ckpt_sum.push(self.state.finish_sum());
                if self.pruning {
                    self.ckpt_pending.push(self.state.pending_floor());
                }
            }
            let (t, m) = (seg.task, seg.machine);
            let exec = snap.exec_time(m, t);
            let (_, finish) = snap.schedule_step(
                t,
                m,
                exec,
                |src| base.machine_of(src),
                &self.finish,
                &self.machine_avail,
            );
            self.finish[t.index()] = finish;
            self.machine_avail[m.index()] = finish;
            self.state.fold(m, finish, exec);
            if self.pruning {
                self.state.note_pending((finish + self.tail[t.index()]) * self.deflate);
            }
        }
        self.base_finish.copy_from_slice(&self.finish);
        self.end_state.clone_from(&self.state);
        self.base_total_busy = self.end_state.machine_busy().iter().sum();

        // Latest-consumer positions: a replay that perturbed task `u`'s
        // timing (or `t`'s machine) must pass `last_consumer[u]` before
        // it may splice. Last-use positions: which machines still host
        // work at or after a boundary (frontier entries of idle-from-
        // here-on machines are irrelevant to reconvergence).
        if self.splicing {
            self.last_consumer.clear();
            self.last_consumer.resize(k, 0);
            self.last_use.clear();
            self.last_use.resize(l, 0);
            for (i, seg) in base.segments().iter().enumerate() {
                for (src, _) in snap.preds(seg.task) {
                    self.last_consumer[src.index()] = i as u32;
                }
                self.last_use[seg.machine.index()] = i as u32 + 1;
            }
        }

        // Influence cone of the critical (first max-finish) task: close
        // over DAG predecessors and machine-order predecessors, walking
        // positions downward (both kinds of edge point strictly left in
        // a linear extension, so one descending pass saturates). Any
        // move that provably stays out of the cone leaves the critical
        // finish bit-identical — the strongest zero-replay floor.
        if self.pruning {
            self.build_cone(base);
        }

        // Reverse sweep: suffix aggregates per checkpoint boundary
        // (the busy sums also feed pruning's machine-load floors).
        if self.pruning || self.splicing {
            let snap = self.snap.as_ref();
            let ckpts = self.ckpt_max.len();
            self.sfx_max.clear();
            self.sfx_max.resize(ckpts, 0.0);
            self.sfx_sum.clear();
            self.sfx_sum.resize(ckpts, 0.0);
            self.sfx_busy.clear();
            self.sfx_busy.resize(ckpts * l, 0.0);
            self.machine_avail.fill(0.0); // reused as the running busy vector
            let mut max = 0.0f64;
            let mut sum = 0.0f64;
            for (i, seg) in base.segments().iter().enumerate().rev() {
                let f = self.base_finish[seg.task.index()];
                max = max.max(f);
                sum += f;
                self.machine_avail[seg.machine.index()] += snap.exec_time(seg.machine, seg.task);
                if i % self.stride == 0 {
                    let c = i / self.stride;
                    self.sfx_max[c] = max;
                    self.sfx_sum[c] = sum;
                    self.sfx_busy[c * l..(c + 1) * l].copy_from_slice(&self.machine_avail);
                }
            }
        }
    }

    /// Closes the critical task's influence cone over DAG predecessors
    /// and machine-order predecessors (see [`prime`](Self::prime)).
    fn build_cone(&mut self, base: &Solution) {
        let snap = self.snap.as_ref();
        let k = snap.task_count();
        let l = snap.machine_count();
        let mut crit_pos = 0usize;
        let mut crit_finish = f64::NEG_INFINITY;
        self.prev_on_machine.clear();
        self.prev_on_machine.resize(k, 0);
        self.cone_last.clear();
        self.cone_last.resize(l, 0); // reused as the running machine cursor
        for (i, seg) in base.segments().iter().enumerate() {
            let f = self.base_finish[seg.task.index()];
            if f > crit_finish {
                crit_finish = f;
                crit_pos = i;
            }
            let m = seg.machine.index();
            self.prev_on_machine[seg.task.index()] = self.cone_last[m];
            self.cone_last[m] = i as u32 + 1;
        }
        self.in_cone.clear();
        self.in_cone.resize(k, false);
        self.in_cone[base.segment_at(crit_pos).task.index()] = true;
        for i in (0..=crit_pos).rev() {
            let u = base.segment_at(i).task;
            if self.in_cone[u.index()] {
                for (src, _) in snap.preds(u) {
                    self.in_cone[src.index()] = true;
                }
                let prev = self.prev_on_machine[u.index()];
                if prev > 0 {
                    self.in_cone[base.segment_at(prev as usize - 1).task.index()] = true;
                }
            }
        }
        self.cone_last.clear();
        self.cone_last.resize(l, 0);
        for (i, seg) in base.segments().iter().enumerate() {
            if self.in_cone[seg.task.index()] {
                self.cone_last[seg.machine.index()] = i as u32 + 1;
            }
        }
    }

    /// The primed base's own score under `obj` — a free accumulator read,
    /// not a pass.
    ///
    /// # Panics
    /// If the evaluator was never primed, or `obj` does not support
    /// incremental scoring.
    pub fn base_score(&self, obj: &dyn Objective) -> f64 {
        assert!(self.base.is_some(), "prime() the evaluator first");
        obj.finalize(&self.end_state)
    }

    /// Scores *base with task `t` moved to string position `new_pos` on
    /// machine `new_m`* (remove-then-insert semantics, exactly
    /// [`Solution::move_task`]) under `obj`, replaying only from the
    /// nearest checkpoint at or before the first affected position.
    ///
    /// The result is bit-identical to a full
    /// [`crate::Evaluator::objective_value`] pass over the materialized
    /// mutated solution. The base stays primed, so any number of moves
    /// can be scored back to back.
    ///
    /// # Panics
    /// If the evaluator was never primed, or `obj` does not support
    /// incremental scoring. `new_pos` must lie inside `t`'s valid range
    /// on the base (callers enumerate candidates from
    /// [`Solution::valid_range`]); positions outside it yield a
    /// precedence-inconsistent replay and a meaningless score.
    pub fn score_move(
        &mut self,
        t: TaskId,
        new_pos: usize,
        new_m: MachineId,
        obj: &dyn Objective,
    ) -> f64 {
        match self.score_move_bounded(t, new_pos, new_m, f64::INFINITY, obj) {
            MoveScore::Exact(score) => score,
            MoveScore::Pruned => unreachable!("an infinite bound never prunes"),
        }
    }

    /// Like [`score_move`](Self::score_move), but threads the caller's
    /// best-so-far score into the replay: the candidate is abandoned
    /// ([`MoveScore::Pruned`]) the moment the objective's monotone
    /// [`lower bound`](Objective::lower_bound) reaches `bound`. A pruned
    /// candidate's true score is provably `>= bound` — it cannot
    /// *strictly beat* the bound — so in an argmin scan committing
    /// strict improvements with earliest-index tie-breaking it can
    /// neither win nor displace the incumbent (a tie loses to the
    /// earlier incumbent whether scored exactly or pruned): **bounded
    /// and unbounded scans commit identical selections**, the bound only
    /// skips work. Callers that need to distinguish an exact tie from a
    /// worse candidate must use [`score_move`](Self::score_move).
    ///
    /// Independently, the replay watches for **reconvergence**: once it
    /// is past the disturbed window and every consumer of a perturbed
    /// timing, a checkpoint boundary whose machine frontier bitwise
    /// matches the base walk's proves the remaining tail would replay
    /// the base walk exactly — the precomputed suffix aggregates (or,
    /// for sum-based objectives, the base end state when the whole
    /// accumulator matches) are spliced in instead of walking the tail,
    /// making the cost O(disturbed region) instead of O(k − pos). Both
    /// cuts are exact: every [`MoveScore::Exact`] is bit-identical to a
    /// full pass, whatever the flags ([`set_pruning`](Self::set_pruning),
    /// [`set_splicing`](Self::set_splicing)).
    ///
    /// Every call counts as exactly one evaluation, pruned or not — the
    /// evaluation axis measures candidates considered, not work done.
    ///
    /// # Panics
    /// As [`score_move`](Self::score_move).
    pub fn score_move_bounded(
        &mut self,
        t: TaskId,
        new_pos: usize,
        new_m: MachineId,
        bound: f64,
        obj: &dyn Objective,
    ) -> MoveScore {
        let IncrementalEvaluator {
            snap,
            stride,
            base,
            base_finish,
            ckpt_avail,
            ckpt_busy,
            ckpt_max,
            ckpt_sum,
            end_state,
            sfx_max,
            sfx_sum,
            sfx_busy,
            last_consumer,
            last_use,
            base_total_busy,
            deflate,
            scan_floor,
            tail,
            ckpt_pending,
            in_cone,
            cone_last,
            machine_avail,
            remaining_busy,
            state,
            finish,
            dirty,
            evaluations,
            pruned,
            spliced,
            pruning,
            splicing,
            prune_ready,
            splice_ready,
            ..
        } = self;
        let snap = snap.as_ref();
        let base = base.as_ref().expect("prime() the evaluator first");
        let k = base.len();
        let l = snap.machine_count();
        assert!(new_pos < k, "move position out of range");
        debug_assert!(new_m.index() < l, "machine out of range");

        let old_pos = base.position_of(t);
        let old_m = base.machine_of(t);
        let first = old_pos.min(new_pos);
        // No segment index at or beyond this differs from the base.
        let ceiling = old_pos.max(new_pos);
        *evaluations += 1;
        obs::add(obs::Counter::ScanScored, 1);
        crate::faults::eval_tick();
        // Resume from the nearest checkpoint at or before `first`.
        // Bound context. The total-busy hint must upper-bound the busy
        // sum `finalize` will compute for *this candidate*, rounding
        // included: take the base total plus the whole relocated exec
        // (never subtracting the old placement) and inflate past the
        // worst-case accumulation drift of O(k + l) roundings.
        let do_prune = *pruning && *prune_ready && bound < f64::INFINITY;
        // Scan-global cutoff: the certified instance floor lower-bounds
        // every candidate's exact score, so once the caller's running
        // best has reached the floor nothing can strictly improve —
        // instant prune, zero replay (ties lose, as everywhere).
        if do_prune && *scan_floor >= bound {
            *pruned += 1;
            obs::add(obs::Counter::ScanPruned, 1);
            return MoveScore::Pruned;
        }
        let exec_new = snap.exec_time(new_m, t);
        let hints = BoundHints {
            total_tasks: k,
            total_busy_upper: (*base_total_busy + exec_new)
                * (1.0 + (4 * (k + l) + 64) as f64 * f64::EPSILON),
        };

        let ci = first / *stride;
        machine_avail.copy_from_slice(&ckpt_avail[ci * l..(ci + 1) * l]);
        state.load(ckpt_max[ci], ckpt_sum[ci], ci * *stride, &ckpt_busy[ci * l..(ci + 1) * l]);
        if do_prune {
            state.note_pending(ckpt_pending[ci]);
            remaining_busy.copy_from_slice(&sfx_busy[ci * l..(ci + 1) * l]);
        }

        // Fast-forward the unchanged positions [ci·stride, first): their
        // timing is the base's, so the frontier folds from stored finish
        // times without touching predecessor lists.
        for seg in &base.segments()[ci * *stride..first] {
            let (u, mu) = (seg.task, seg.machine);
            let f = base_finish[u.index()];
            let exec = snap.exec_time(mu, u);
            machine_avail[mu.index()] = f;
            state.fold(mu, f, exec);
            if do_prune {
                state.note_pending((f + tail[u.index()]) * *deflate);
                remaining_busy[mu.index()] -= exec;
            }
        }

        if do_prune {
            // `remaining_busy` now holds the execution time each machine
            // still owes under the *mutated* assignment (base suffix
            // with `t` relocated). Machine frontiers only move forward
            // and `avail[m] + remaining[m]` floors machine `m`'s final
            // frontier, so the floors below are valid before a single
            // position is replayed — a zero-replay cut that kills
            // "slow/busy machine" candidates outright. The chain floor
            // through `t`'s tail comes along for free.
            remaining_busy[old_m.index()] -= snap.exec_time(old_m, t);
            remaining_busy[new_m.index()] += exec_new;
            for (&now, &rem) in machine_avail.iter().zip(remaining_busy.iter()) {
                state.note_pending((now + rem) * *deflate);
            }
            state.note_pending(
                (machine_avail[new_m.index()] + exec_new + tail[t.index()]) * *deflate,
            );
            // Critical-cone floor: a move of a non-cone task is invisible
            // to the critical task unless it inserts ahead of a cone
            // task on the target machine — every cone input (DAG
            // predecessors, machine-order predecessors) recomputes
            // bit-identically, so the candidate's max finish is at least
            // the base's, exactly. The dominant case in a move scan: the
            // incumbent's critical chain instantly disqualifies every
            // candidate that does not touch it.
            if !in_cone[t.index()] {
                let cone_end = cone_last[new_m.index()] as usize; // base pos + 1; 0 = none
                let inserts_before_cone =
                    if old_pos < new_pos { cone_end > new_pos + 1 } else { cone_end > new_pos };
                if !inserts_before_cone {
                    state.note_pending(end_state.max_finish());
                }
            }
            if obj.lower_bound(state, &hints) >= bound {
                // Nothing was dirtied yet.
                *pruned += 1;
                obs::add(obs::Counter::ScanPruned, 1);
                return MoveScore::Pruned;
            }
        }

        // Latest position (base indexing — valid beyond `ceiling`) of a
        // consumer reading a perturbed timing; splicing must wait until
        // the replay has passed it. A machine change perturbs every
        // transfer out of `t` whatever its finish time does.
        let mut horizon = if new_m == old_m { 0 } else { last_consumer[t.index()] as usize };

        // Replay the disturbed suffix of the *mutated* string, read
        // through an index remapping of the base (no clone, no
        // move_task).
        let seg_at = |i: usize| -> Segment {
            if i == new_pos {
                Segment { task: t, machine: new_m }
            } else if old_pos < new_pos && (old_pos..new_pos).contains(&i) {
                base.segment_at(i + 1)
            } else if new_pos < old_pos && i > new_pos && i <= old_pos {
                base.segment_at(i - 1)
            } else {
                base.segment_at(i)
            }
        };
        for i in first..k {
            // Reconvergence check, only at checkpoint boundaries past
            // both the disturbed window and every perturbed consumer.
            // The frontier must match the base walk's, but only on
            // machines that still host work at or after the boundary —
            // an entry nothing will read cannot influence the tail.
            if i > ceiling && i % *stride == 0 {
                let c = i / *stride;
                let frontier_ok = *splicing
                    && *splice_ready
                    && horizon < i
                    && machine_avail
                        .iter()
                        .zip(&ckpt_avail[c * l..(c + 1) * l])
                        .zip(last_use.iter())
                        .all(|((now, then), &used)| used <= i as u32 || now == then);
                if frontier_ok {
                    let suffix = SuffixView {
                        max_finish: sfx_max[c],
                        finish_sum: sfx_sum[c],
                        machine_busy: &sfx_busy[c * l..(c + 1) * l],
                        tasks: k - i,
                    };
                    let score = obj.splice(state, &suffix).or_else(|| {
                        // Identity splice: the whole accumulator state
                        // matches the base walk's, so the finished fold
                        // is the base walk's finished fold.
                        state
                            .matches(ckpt_max[c], ckpt_sum[c], i, &ckpt_busy[c * l..(c + 1) * l])
                            .then(|| obj.finalize(end_state))
                    });
                    if let Some(score) = score {
                        *spliced += 1;
                        obs::add(obs::Counter::ScanSpliced, 1);
                        for &u in dirty.iter() {
                            finish[u as usize] = base_finish[u as usize];
                        }
                        dirty.clear();
                        return MoveScore::Exact(score);
                    }
                }
            }
            let seg = seg_at(i);
            let (u, mu) = (seg.task, seg.machine);
            let exec = snap.exec_time(mu, u);
            let (_, f) = snap.schedule_step(
                u,
                mu,
                exec,
                |src| if src == t { new_m } else { base.machine_of(src) },
                finish,
                machine_avail,
            );
            finish[u.index()] = f;
            dirty.push(u.raw());
            machine_avail[mu.index()] = f;
            state.fold(mu, f, exec);
            if f != base_finish[u.index()] {
                horizon = horizon.max(last_consumer[u.index()] as usize);
            }
            if do_prune {
                // Chain floor (this task's finish plus its remaining
                // critical path) and machine-load floor (this machine's
                // frontier plus the work it still owes) — both monotone
                // along the fold, both O(1).
                state.note_pending((f + tail[u.index()]) * *deflate);
                let rem = remaining_busy[mu.index()] - exec;
                remaining_busy[mu.index()] = rem;
                state.note_pending((f + rem) * *deflate);
                if obj.lower_bound(state, &hints) >= bound {
                    *pruned += 1;
                    obs::add(obs::Counter::ScanPruned, 1);
                    for &u in dirty.iter() {
                        finish[u as usize] = base_finish[u as usize];
                    }
                    dirty.clear();
                    return MoveScore::Pruned;
                }
            }
        }
        let score = obj.finalize(state);
        // Restore the pristine base finish times (dirty entries only).
        for &u in dirty.iter() {
            finish[u as usize] = base_finish[u as usize];
        }
        dirty.clear();
        MoveScore::Exact(score)
    }

    /// Scores an **arbitrary candidate sharing a string prefix with the
    /// primed base** — the GA offspring shape: a crossover child is
    /// parent A's segment string up to the first divergence point, then
    /// anything at all. Resumes from the nearest checkpoint at or before
    /// `diverge` and replays only `[diverge, k)`, reading the child's
    /// own segments; the result is bit-identical to a full
    /// [`crate::Evaluator::objective_value`] pass over `child`, because
    /// the replay is the same fold the full pass performs and the
    /// resumed prefix state is the fold of an *identical* prefix.
    ///
    /// Replays may still finish early through the reconvergence splice:
    /// past the last position where `child` differs from the base, the
    /// tail is the base's, so the bitwise frontier-match logic of
    /// [`score_move_bounded`](Self::score_move_bounded) applies
    /// unchanged. There is **no pruning** on this path — population
    /// fitness feeds roulette selection, which needs every exact value.
    ///
    /// `diverge` is a contract, not a hint: segments `[0, diverge)` of
    /// `child` must equal the base's (callers compute the first
    /// differing index; any smaller value is also sound, merely slower).
    /// Counts as exactly one evaluation.
    ///
    /// # Panics
    /// If the evaluator was never primed, `obj` does not support
    /// incremental scoring, `child`'s length differs from the base's, or
    /// `diverge > k`. Debug builds verify the shared-prefix contract.
    pub fn score_suffix(&mut self, child: &Solution, diverge: usize, obj: &dyn Objective) -> f64 {
        let IncrementalEvaluator {
            snap,
            stride,
            base,
            base_finish,
            ckpt_avail,
            ckpt_busy,
            ckpt_max,
            ckpt_sum,
            end_state,
            sfx_max,
            sfx_sum,
            sfx_busy,
            last_consumer,
            last_use,
            machine_avail,
            state,
            finish,
            dirty,
            evaluations,
            spliced,
            splicing,
            splice_ready,
            ..
        } = self;
        let snap = snap.as_ref();
        let base = base.as_ref().expect("prime() the evaluator first");
        let k = base.len();
        let l = snap.machine_count();
        assert_eq!(child.len(), k, "child/base length mismatch");
        assert!(diverge <= k, "divergence index out of range");
        debug_assert!(
            child.segments()[..diverge] == base.segments()[..diverge],
            "score_suffix contract: segments before the divergence index must match the base"
        );
        *evaluations += 1;
        obs::add(obs::Counter::ScanScored, 1);
        crate::faults::eval_tick();

        // Last position where the child differs from the base: beyond it
        // the tail is the base's, so checkpoint boundaries there are
        // splice-eligible (frontier match permitting). No difference at
        // all means the child *is* the base — its score is the primed
        // end state, no replay needed.
        let Some(ceiling) = (diverge..k).rev().find(|&i| child.segment_at(i) != base.segment_at(i))
        else {
            return obj.finalize(end_state);
        };

        let ci = diverge / *stride;
        machine_avail.copy_from_slice(&ckpt_avail[ci * l..(ci + 1) * l]);
        state.load(ckpt_max[ci], ckpt_sum[ci], ci * *stride, &ckpt_busy[ci * l..(ci + 1) * l]);

        // Fast-forward the shared positions [ci·stride, diverge): the
        // child's prefix is the base's, so the frontier folds from the
        // stored base finish times without touching predecessor lists.
        for seg in &base.segments()[ci * *stride..diverge] {
            let (u, mu) = (seg.task, seg.machine);
            let f = base_finish[u.index()];
            machine_avail[mu.index()] = f;
            state.fold(mu, f, snap.exec_time(mu, u));
        }

        // Latest base position of a consumer reading a timing or
        // transfer this replay perturbed; splicing must wait until the
        // replay has passed it. Tail consumers sit at the same positions
        // in child and base (the tail is shared), so base indexing is
        // exact where it matters.
        let mut horizon = 0usize;

        for i in diverge..k {
            if i > ceiling && i % *stride == 0 {
                let c = i / *stride;
                let frontier_ok = *splicing
                    && *splice_ready
                    && horizon < i
                    && machine_avail
                        .iter()
                        .zip(&ckpt_avail[c * l..(c + 1) * l])
                        .zip(last_use.iter())
                        .all(|((now, then), &used)| used <= i as u32 || now == then);
                if frontier_ok {
                    let suffix = SuffixView {
                        max_finish: sfx_max[c],
                        finish_sum: sfx_sum[c],
                        machine_busy: &sfx_busy[c * l..(c + 1) * l],
                        tasks: k - i,
                    };
                    let score = obj.splice(state, &suffix).or_else(|| {
                        state
                            .matches(ckpt_max[c], ckpt_sum[c], i, &ckpt_busy[c * l..(c + 1) * l])
                            .then(|| obj.finalize(end_state))
                    });
                    if let Some(score) = score {
                        *spliced += 1;
                        obs::add(obs::Counter::ScanSpliced, 1);
                        for &u in dirty.iter() {
                            finish[u as usize] = base_finish[u as usize];
                        }
                        dirty.clear();
                        return score;
                    }
                }
            }
            let seg = child.segment_at(i);
            let (u, mu) = (seg.task, seg.machine);
            let exec = snap.exec_time(mu, u);
            let (_, f) =
                snap.schedule_step(u, mu, exec, |src| child.machine_of(src), finish, machine_avail);
            finish[u.index()] = f;
            dirty.push(u.raw());
            machine_avail[mu.index()] = f;
            state.fold(mu, f, exec);
            // A changed finish perturbs the timing consumers read; a
            // changed machine perturbs every transfer out of `u` even if
            // the finish time is bit-identical.
            if f != base_finish[u.index()] || mu != base.machine_of(u) {
                horizon = horizon.max(last_consumer[u.index()] as usize);
            }
        }
        let score = obj.finalize(state);
        for &u in dirty.iter() {
            finish[u as usize] = base_finish[u as usize];
        }
        dirty.clear();
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::init::random_solution;
    use crate::objective::ObjectiveKind;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_taskgraph::gen::{layered, LayeredConfig};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_instance(tasks: usize, machines: usize, seed: u64) -> HcInstance {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = LayeredConfig { tasks, mean_width: 4, edge_prob: 0.5, skip_prob: 0.05 };
        let graph = layered(&cfg, &mut rng).unwrap();
        let exec = Matrix::from_fn(machines, tasks, |_, _| rng.gen_range(10.0..100.0));
        let pairs = machines * (machines - 1) / 2;
        let transfer = Matrix::from_fn(pairs, graph.data_count(), |_, _| rng.gen_range(1.0..30.0));
        let sys = HcSystem::with_anonymous_machines(machines, exec, transfer).unwrap();
        HcInstance::new(graph, sys).unwrap()
    }

    #[test]
    fn auto_stride_is_ceil_sqrt() {
        assert_eq!(auto_stride(0), 1);
        assert_eq!(auto_stride(1), 1);
        assert_eq!(auto_stride(4), 2);
        assert_eq!(auto_stride(5), 3);
        assert_eq!(auto_stride(100), 10);
        assert_eq!(auto_stride(101), 11);
    }

    #[test]
    fn score_move_is_bit_identical_to_full_eval_at_every_stride() {
        let inst = random_instance(24, 4, 3);
        let g = inst.graph();
        let k = inst.task_count();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut scalar = Evaluator::new(&inst);
        let weighted = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.3, balance: 0.7 };
        for stride in [Some(1), Some(2), Some(5), None, Some(k), Some(k + 17)] {
            let base = random_solution(&inst, &mut rng);
            let mut inc = IncrementalEvaluator::new(&inst);
            inc.set_stride(stride);
            inc.prime(&base);
            for _ in 0..40 {
                let t = TaskId::new(rng.gen_range(0..k as u32));
                let (lo, hi) = base.valid_range(g, t);
                let pos = rng.gen_range(lo..=hi);
                let m = MachineId::new(rng.gen_range(0..4));
                let mut cand = base.clone();
                cand.move_task(g, t, pos, m).unwrap();
                for kind in ObjectiveKind::BASIC.into_iter().chain([weighted]) {
                    let fast = inc.score_move(t, pos, m, &kind);
                    let slow = scalar.objective_value(&cand, &kind);
                    assert_eq!(fast, slow, "{} stride {stride:?}", kind.label());
                }
            }
        }
    }

    #[test]
    fn base_score_matches_full_eval_and_incumbent_move() {
        let inst = random_instance(15, 3, 4);
        let g = inst.graph();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let base = random_solution(&inst, &mut rng);
        let mut inc = IncrementalEvaluator::new(&inst);
        inc.prime(&base);
        let mut scalar = Evaluator::new(&inst);
        for kind in ObjectiveKind::BASIC {
            assert_eq!(inc.base_score(&kind), scalar.objective_value(&base, &kind));
        }
        // Re-placing a task at its incumbent position/machine is the base.
        let t = TaskId::new(7);
        let _ = g;
        let score =
            inc.score_move(t, base.position_of(t), base.machine_of(t), &ObjectiveKind::Makespan);
        assert_eq!(score, inc.base_score(&ObjectiveKind::Makespan));
    }

    #[test]
    fn repriming_tracks_a_moving_base() {
        // SA's shape: accept moves, re-prime, keep scoring.
        let inst = random_instance(18, 3, 6);
        let g = inst.graph();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut current = random_solution(&inst, &mut rng);
        let mut inc = IncrementalEvaluator::new(&inst);
        let mut scalar = Evaluator::new(&inst);
        inc.prime(&current);
        for _ in 0..60 {
            let t = TaskId::new(rng.gen_range(0..18));
            let (lo, hi) = current.valid_range(g, t);
            let pos = rng.gen_range(lo..=hi);
            let m = MachineId::new(rng.gen_range(0..3));
            let fast = inc.score_move(t, pos, m, &ObjectiveKind::Makespan);
            let mut cand = current.clone();
            cand.move_task(g, t, pos, m).unwrap();
            assert_eq!(fast, scalar.makespan(&cand));
            if rng.gen::<f64>() < 0.4 {
                current = cand;
                inc.prime(&current);
            }
        }
        assert_eq!(inc.evaluations(), 60, "one scoring per move, primes uncounted");
    }

    #[test]
    fn shared_snapshot_matches_owned() {
        let inst = random_instance(12, 3, 8);
        let snap = EvalSnapshot::new(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let base = random_solution(&inst, &mut rng);
        let mut owned = IncrementalEvaluator::new(&inst);
        let mut borrowed = IncrementalEvaluator::with_snapshot(&snap);
        owned.prime(&base);
        borrowed.prime(&base);
        assert_eq!(owned.snapshot(), borrowed.snapshot());
        assert_eq!(owned.base(), Some(&base));
        let t = TaskId::new(5);
        let (lo, _) = base.valid_range(inst.graph(), t);
        let a = owned.score_move(t, lo, MachineId::new(0), &ObjectiveKind::Makespan);
        let b = borrowed.score_move(t, lo, MachineId::new(0), &ObjectiveKind::Makespan);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_disturbed_region_splices_to_the_base_score() {
        // Moving a task to its own (position, machine) disturbs nothing:
        // the replay reconverges at the first checkpoint boundary past
        // the position and splices, for every objective — and the score
        // is exactly the base score.
        let inst = random_instance(30, 4, 19);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let base = random_solution(&inst, &mut rng);
        let weighted = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.3, balance: 0.7 };
        for kind in ObjectiveKind::BASIC.into_iter().chain([weighted]) {
            let mut inc = IncrementalEvaluator::new(&inst);
            inc.set_stride(Some(2));
            inc.prime(&base);
            // An early task: plenty of boundaries after it.
            let t = base.segment_at(3).task;
            let score = inc.score_move(t, 3, base.machine_of(t), &kind);
            assert_eq!(score, inc.base_score(&kind), "{}", kind.label());
            assert_eq!(inc.stats().spliced, 1, "{}: identity move must splice", kind.label());
            assert_eq!(inc.stats().scored, 1);
            // Splicing off: same bits, no splice.
            inc.set_splicing(false);
            assert_eq!(inc.score_move(t, 3, base.machine_of(t), &kind), score);
            assert_eq!(inc.stats().spliced, 1, "splicing disabled");
        }
    }

    #[test]
    fn maximal_disturbed_region_stays_exact() {
        // A move to position 0 replays from the very start — the worst
        // case for both cuts; scores must still be bit-identical to the
        // full pass, spliced or not, pruned path disabled or not.
        let inst = random_instance(25, 4, 23);
        let g = inst.graph();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let base = random_solution(&inst, &mut rng);
        // The task at position 0 always admits position-0 moves (it has
        // no predecessors), and machine changes there disturb the whole
        // string.
        let t = base.segment_at(0).task;
        assert_eq!(base.valid_range(g, t).0, 0);
        let mut scalar = Evaluator::new(&inst);
        for kind in ObjectiveKind::BASIC {
            let mut inc = IncrementalEvaluator::new(&inst);
            inc.prime(&base);
            for m in 0..4 {
                let m = MachineId::new(m);
                let mut cand = base.clone();
                cand.move_task(g, t, 0, m).unwrap();
                let truth = scalar.objective_value(&cand, &kind);
                assert_eq!(inc.score_move(t, 0, m, &kind), truth, "{}", kind.label());
                // Bounded at exactly the true score: Exact(truth) or a
                // (sound) prune are the only legal outcomes.
                match inc.score_move_bounded(t, 0, m, truth, &kind) {
                    MoveScore::Exact(s) => assert_eq!(s, truth),
                    MoveScore::Pruned => {} // truth >= truth holds
                }
            }
        }
    }

    #[test]
    fn pruning_and_splicing_flags_never_change_bits() {
        let inst = random_instance(28, 4, 31);
        let g = inst.graph();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let base = random_solution(&inst, &mut rng);
        let mut plain = IncrementalEvaluator::new(&inst);
        plain.set_pruning(false);
        plain.set_splicing(false);
        plain.prime(&base);
        let mut fast = IncrementalEvaluator::new(&inst);
        fast.prime(&base);
        let mut best = f64::INFINITY;
        for _ in 0..60 {
            let t = TaskId::new(rng.gen_range(0..28));
            let (lo, hi) = base.valid_range(g, t);
            let pos = rng.gen_range(lo..=hi);
            let m = MachineId::new(rng.gen_range(0..4));
            let truth = plain.score_move(t, pos, m, &ObjectiveKind::Makespan);
            match fast.score_move_bounded(t, pos, m, best, &ObjectiveKind::Makespan) {
                MoveScore::Exact(s) => assert_eq!(s, truth),
                MoveScore::Pruned => assert!(truth >= best, "pruned but {truth} < bound {best}"),
            }
            if truth < best {
                best = truth;
            }
        }
        // With pruning off, a bounded call never prunes.
        assert_eq!(plain.stats().pruned, 0);
        assert!(plain
            .score_move_bounded(
                TaskId::new(0),
                base.position_of(TaskId::new(0)),
                base.machine_of(TaskId::new(0)),
                0.0,
                &ObjectiveKind::Makespan
            )
            .exact()
            .is_some());
        // MoveScore helpers.
        assert!(MoveScore::Pruned.is_pruned());
        assert_eq!(MoveScore::Pruned.exact(), None);
        assert_eq!(MoveScore::Exact(2.0).exact(), Some(2.0));
        assert!(!MoveScore::Exact(2.0).is_pruned());
    }

    #[test]
    fn wide_dynamic_range_floors_never_over_prune() {
        // Regression: a huge finish feeding a tiny consumer chain. The
        // computed chain absorbs the small execs entirely
        // (round(1e16 + 1) == 1e16), so any floor whose rounding margin
        // scales with the *tail* instead of the whole `finish + tail`
        // magnitude overshoots the true computed makespan and prunes
        // candidates that strictly beat the bound.
        let mut b = mshc_taskgraph::TaskGraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = b.build().unwrap();
        let huge = 1e16;
        let exec =
            Matrix::from_rows(&[vec![huge, 1.0, 1.0, 1.0], vec![huge * 1.25, 2.0, 2.0, 2.0]]);
        let transfer = Matrix::from_fn(1, g.data_count(), |_, _| 0.5);
        let sys = HcSystem::with_anonymous_machines(2, exec, transfer).unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let graph = inst.graph();
        let order: Vec<TaskId> = (0..4).map(TaskId::new).collect();
        let base = Solution::from_order(graph, 2, &order, &[MachineId::new(0); 4]).unwrap();
        let mut inc = IncrementalEvaluator::new(&inst);
        inc.set_stride(Some(1));
        inc.prime(&base);
        let mut scalar = Evaluator::new(&inst);
        // Every candidate, bounded by every candidate's exact score: a
        // strictly better candidate must never come back Pruned.
        let mut candidates = Vec::new();
        for t in 0..4u32 {
            let t = TaskId::new(t);
            let (lo, hi) = base.valid_range(graph, t);
            for pos in lo..=hi {
                for m in 0..2 {
                    candidates.push((t, pos, MachineId::new(m)));
                }
            }
        }
        let truths: Vec<f64> = candidates
            .iter()
            .map(|&(t, pos, m)| {
                let mut cand = base.clone();
                cand.move_task(graph, t, pos, m).unwrap();
                scalar.objective_value(&cand, &ObjectiveKind::Makespan)
            })
            .collect();
        for (&(t, pos, m), &truth) in candidates.iter().zip(&truths) {
            for &bound in &truths {
                match inc.score_move_bounded(t, pos, m, bound, &ObjectiveKind::Makespan) {
                    MoveScore::Exact(s) => assert_eq!(s, truth),
                    MoveScore::Pruned => assert!(
                        truth >= bound,
                        "pruned at bound {bound} but true score {truth} strictly beats it \
                         ({t} -> ({pos}, {m}))"
                    ),
                }
            }
        }
    }

    #[test]
    fn scan_stats_track_and_merge() {
        let mut a = ScanStats { scored: 10, pruned: 4, spliced: 1, ..Default::default() };
        a.merge(ScanStats { scored: 10, pruned: 0, spliced: 3, ..Default::default() });
        assert_eq!(a, ScanStats { scored: 20, pruned: 4, spliced: 4, ..Default::default() });
        assert_eq!(a.pruned_fraction(), 0.2);
        assert_eq!(a.spliced_fraction(), 0.2);
        assert_eq!(ScanStats::default().pruned_fraction(), 0.0);
        assert_eq!(ScanStats::default().spliced_fraction(), 0.0);
        // The population axes merge and ratio independently.
        a.merge(ScanStats {
            suffixed: 3,
            prefix_reused: 30,
            suffix_total: 120,
            ..Default::default()
        });
        a.merge(ScanStats {
            suffixed: 1,
            prefix_reused: 30,
            suffix_total: 40,
            ..Default::default()
        });
        assert_eq!(a.suffixed, 4);
        assert_eq!(a.prefix_reuse_fraction(), 60.0 / 160.0);
        assert_eq!(ScanStats::default().prefix_reuse_fraction(), 0.0);
    }

    /// First string position where two equal-length solutions differ
    /// (`k` when identical) — the divergence index GA hands to
    /// `score_suffix`.
    fn first_divergence(a: &Solution, b: &Solution) -> usize {
        a.segments().iter().zip(b.segments()).position(|(x, y)| x != y).unwrap_or(a.len())
    }

    #[test]
    fn score_suffix_matches_full_eval_for_multi_move_children() {
        // Children built by stacking several random moves on the base —
        // crossover-offspring shape: shared prefix, arbitrary tail.
        let inst = random_instance(26, 4, 41);
        let g = inst.graph();
        let k = inst.task_count();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mut scalar = Evaluator::new(&inst);
        let weighted = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.3, balance: 0.7 };
        for stride in [Some(1), Some(3), None, Some(k + 5)] {
            let base = random_solution(&inst, &mut rng);
            let mut inc = IncrementalEvaluator::new(&inst);
            inc.set_stride(stride);
            inc.set_pruning(false);
            inc.prime(&base);
            for _ in 0..25 {
                let mut child = base.clone();
                for _ in 0..rng.gen_range(1..5) {
                    let t = TaskId::new(rng.gen_range(0..k as u32));
                    let (lo, hi) = child.valid_range(g, t);
                    let pos = rng.gen_range(lo..=hi);
                    let m = MachineId::new(rng.gen_range(0..4));
                    child.move_task(g, t, pos, m).unwrap();
                }
                let d = first_divergence(&base, &child);
                for kind in ObjectiveKind::BASIC.into_iter().chain([weighted]) {
                    let truth = scalar.objective_value(&child, &kind);
                    assert_eq!(
                        inc.score_suffix(&child, d, &kind),
                        truth,
                        "{} stride {stride:?} diverge {d}",
                        kind.label()
                    );
                    // Any looser (smaller) divergence index is equally
                    // exact — `diverge` is a resume hint bounded by the
                    // true first difference, not a required tight value.
                    let loose = d / 2;
                    assert_eq!(inc.score_suffix(&child, loose, &kind), truth);
                    assert_eq!(inc.score_suffix(&child, 0, &kind), truth);
                }
            }
        }
    }

    #[test]
    fn score_suffix_of_identical_child_is_the_base_score() {
        let inst = random_instance(20, 3, 44);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let base = random_solution(&inst, &mut rng);
        let mut inc = IncrementalEvaluator::new(&inst);
        inc.prime(&base);
        let child = base.clone();
        for kind in ObjectiveKind::BASIC {
            assert_eq!(inc.score_suffix(&child, base.len(), &kind), inc.base_score(&kind));
            // A loose divergence index on an identical child short-cuts
            // to the primed end state without replaying anything.
            assert_eq!(inc.score_suffix(&child, 0, &kind), inc.base_score(&kind));
        }
        assert_eq!(inc.evaluations(), 8, "every suffix scoring counts once");
    }

    #[test]
    fn score_suffix_splices_when_the_tail_reconverges() {
        // Swap two adjacent, dependency-free tasks on *different*
        // machines: the string differs at two positions but every
        // per-machine order — and therefore every timing — is
        // unchanged, so the replay's frontier bitwise re-converges at
        // the next checkpoint boundary and the tail is spliced.
        let inst = random_instance(30, 4, 19);
        let g = inst.graph();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let base = random_solution(&inst, &mut rng);
        let swap_pos = (0..base.len() - 1)
            .find(|&p| {
                let (a, b) = (base.segment_at(p), base.segment_at(p + 1));
                a.machine != b.machine && !g.predecessors(b.task).any(|s| s == a.task)
            })
            .expect("a random 30-task/4-machine string has an adjacent cross-machine pair");
        let t = base.segment_at(swap_pos).task;
        let mut child = base.clone();
        child.move_task(g, t, swap_pos + 1, base.machine_of(t)).unwrap();
        assert_eq!(first_divergence(&base, &child), swap_pos);
        // Makespan folds through an order-insensitive max, so the
        // frontier *and* accumulators bitwise match the base at the next
        // boundary and the suffix aggregates are spliced in. Sum-based
        // objectives fold `finish_sum` in string order — the swap
        // reorders two additions, so their accumulators legitimately
        // differ and the splice correctly declines; exactness holds
        // either way.
        let mut scalar = Evaluator::new(&inst);
        let weighted = ObjectiveKind::Weighted { makespan: 1.0, flowtime: 0.3, balance: 0.7 };
        for kind in ObjectiveKind::BASIC.into_iter().chain([weighted]) {
            let mut inc = IncrementalEvaluator::new(&inst);
            inc.set_stride(Some(2));
            inc.set_pruning(false);
            inc.prime(&base);
            let score = inc.score_suffix(&child, swap_pos, &kind);
            assert_eq!(score, scalar.objective_value(&child, &kind), "{}", kind.label());
            if matches!(kind, ObjectiveKind::Makespan) {
                assert_eq!(score, inc.base_score(&kind), "timings unchanged");
                assert_eq!(inc.stats().spliced, 1, "reconverged tail must splice");
                // Splicing off: same bits, no splice.
                inc.set_splicing(false);
                assert_eq!(inc.score_suffix(&child, swap_pos, &kind), score);
                assert_eq!(inc.stats().spliced, 1, "splicing disabled");
            }
        }
    }

    #[test]
    #[should_panic(expected = "prime()")]
    fn score_suffix_requires_priming() {
        let inst = random_instance(6, 2, 10);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sol = random_solution(&inst, &mut rng);
        let mut inc = IncrementalEvaluator::new(&inst);
        let _ = inc.score_suffix(&sol, 0, &ObjectiveKind::Makespan);
    }

    #[test]
    #[should_panic(expected = "prime()")]
    fn score_move_requires_priming() {
        let inst = random_instance(6, 2, 10);
        let mut inc = IncrementalEvaluator::new(&inst);
        let _ = inc.score_move(TaskId::new(0), 0, MachineId::new(0), &ObjectiveKind::Makespan);
    }

    #[test]
    fn single_task_instance_works() {
        let g = mshc_taskgraph::TaskGraphBuilder::new(1).build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::from_rows(&[vec![5.0], vec![3.0]]),
            Matrix::filled(1, 0, 0.0),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let base =
            Solution::from_order(inst.graph(), 2, &[TaskId::new(0)], &[MachineId::new(0)]).unwrap();
        let mut inc = IncrementalEvaluator::new(&inst);
        inc.prime(&base);
        assert_eq!(inc.base_score(&ObjectiveKind::Makespan), 5.0);
        assert_eq!(
            inc.score_move(TaskId::new(0), 0, MachineId::new(1), &ObjectiveKind::Makespan),
            3.0
        );
    }
}
