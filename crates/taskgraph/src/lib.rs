//! # mshc-taskgraph
//!
//! Directed-acyclic task-graph substrate for the `mshc` suite, the Rust
//! reproduction of *"Task Matching and Scheduling in Heterogeneous Systems
//! Using Simulated Evolution"* (Barada, Sait & Baig, IPPS 2001).
//!
//! The paper models an application as a DAG of `k` coarse-grained subtasks
//! `S = {s_0 .. s_{k-1}}` connected by `p` *data items* `D = {d_0 .. d_{p-1}}`
//! (§2 of the paper). A data item is produced by exactly one subtask and
//! consumed by exactly one subtask, so data items are exactly the edges of
//! the DAG. This crate provides:
//!
//! * [`TaskGraph`] — an immutable, validated DAG with O(1) access to the
//!   predecessors/successors (and the connecting data items) of each task;
//! * [`TaskGraphBuilder`] — the only way to construct a [`TaskGraph`];
//!   rejects cycles, duplicate edges and dangling endpoints;
//! * topological orders and per-task *levels* ([`topo`]), which the SE
//!   selection step uses to order selected tasks (§4.4);
//! * structural analyses ([`analysis`]): critical paths, transitive
//!   closure/reachability, graph width, connectivity metrics;
//! * deterministic random and structured generators ([`gen`]): layered
//!   random DAGs, Erdős–Rényi-style DAGs, series-parallel graphs, and the
//!   classic scheduling benchmarks (FFT butterfly, Gaussian elimination,
//!   fork–join, in/out-trees, diamond stencils);
//! * [`dot`] — Graphviz export for debugging and documentation.
//!
//! Everything downstream (the platform model, the schedule encoding, the SE
//! and GA schedulers) is built on these types.
//!
//! ## Example
//!
//! ```
//! use mshc_taskgraph::{TaskGraphBuilder, TaskId};
//!
//! // The 7-task DAG of the paper's Figure 1a.
//! let mut b = TaskGraphBuilder::new(7);
//! b.add_edge(0, 2).unwrap(); // d0: s0 -> s2
//! b.add_edge(0, 3).unwrap(); // d1: s0 -> s3
//! b.add_edge(1, 4).unwrap(); // d2: s1 -> s4
//! b.add_edge(2, 5).unwrap(); // d3: s2 -> s5
//! b.add_edge(3, 5).unwrap(); // d4: s3 -> s5
//! b.add_edge(4, 6).unwrap(); // d5: s4 -> s6
//! let g = b.build().unwrap();
//!
//! assert_eq!(g.task_count(), 7);
//! assert_eq!(g.data_count(), 6);
//! assert!(g.is_linear_extension(&[0, 1, 2, 3, 4, 5, 6].map(TaskId::new)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bitset;
pub mod dot;
pub mod error;
pub mod gen;
pub mod graph;
pub mod ids;
pub mod topo;

pub use analysis::{CriticalPath, GraphMetrics, SlackAnalysis, TransitiveClosure};
pub use error::GraphError;
pub use graph::{DataEdge, TaskGraph, TaskGraphBuilder};
pub use ids::{DataId, TaskId};
pub use topo::{Levels, TopoOrder};
