//! Regenerates every evaluation figure of the SE paper.
//!
//! ```text
//! cargo run --release -p mshc-bench --bin figures -- all
//! cargo run --release -p mshc-bench --bin figures -- fig3 fig5 --fast
//! cargo run --release -p mshc-bench --bin figures -- all --iters 2000 --wall 20 --out results
//! ```
//!
//! Outputs CSV series under `results/` (one file per figure; see
//! DESIGN.md §4) plus terminal ASCII previews, and finishes with a
//! summary block suitable for EXPERIMENTS.md.

use mshc_bench::experiments::{
    aggregate_races, baseline_band, contention_probe, fig3, fig4, fig5_7, ExperimentScale,
};
use mshc_bench::report::{emit_band, emit_fig3, emit_fig4, emit_race};
use mshc_platform::InstanceMetrics;
use mshc_workloads::{FigureWorkload, Heterogeneity};
use std::path::PathBuf;
use std::time::Duration;

#[derive(Debug)]
struct Args {
    figures: Vec<String>,
    scale: ExperimentScale,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut figures = Vec::new();
    let mut scale = ExperimentScale::full();
    let mut out = PathBuf::from("results");
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "all" | "fig3" | "fig4" | "fig5" | "fig6" | "fig7" | "band" | "agg" | "contention" => {
                figures.push(a)
            }
            "--fast" => scale = ExperimentScale::fast(),
            "--iters" => {
                scale.iterations =
                    argv.next().and_then(|v| v.parse().ok()).expect("--iters needs an integer");
            }
            "--wall" => {
                let secs: f64 =
                    argv.next().and_then(|v| v.parse().ok()).expect("--wall needs seconds");
                scale.wall = Duration::from_secs_f64(secs);
            }
            "--seed" => {
                scale.seed =
                    argv.next().and_then(|v| v.parse().ok()).expect("--seed needs an integer");
            }
            "--out" => {
                out = PathBuf::from(argv.next().expect("--out needs a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: figures [all|fig3|fig4|fig5|fig6|fig7|band|agg ...] \
                     [--fast] [--iters N] [--wall SECS] [--seed N] [--out DIR]"
                );
                std::process::exit(2);
            }
        }
    }
    if figures.is_empty() {
        figures.push("all".to_string());
    }
    Args { figures, scale, out }
}

fn want(args: &Args, name: &str) -> bool {
    args.figures.iter().any(|f| f == name || f == "all")
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out).expect("create output dir");
    let scale = args.scale;
    println!(
        "# mshc figures: seed {}, {} iterations (figs 3-4), {:?} wall (figs 5-7)",
        scale.seed, scale.iterations, scale.wall
    );
    let mut summary: Vec<String> = Vec::new();

    if want(&args, "fig3") {
        let r = fig3(&scale);
        let m = InstanceMetrics::compute(&r.instance);
        print!("{}", emit_fig3(&r, &args.out).expect("write fig3"));
        let first = r.trace.records()[0].selected.unwrap();
        let n = r.trace.len();
        let tail: f64 = r.trace.records()[n - n / 4..]
            .iter()
            .map(|rec| rec.selected.unwrap() as f64)
            .sum::<f64>()
            / (n / 4) as f64;
        summary.push(format!(
            "fig3: k={} l={} conn={:.2} | selected {} -> {:.1} (first iter -> last-quartile mean); \
             schedule {:.0} -> {:.0}",
            m.tasks,
            m.machines,
            m.connectivity,
            first,
            tail,
            r.trace.records()[0].current_cost,
            r.result.makespan
        ));
    }

    if want(&args, "fig4") {
        let ys = [5usize, 9, 12];
        for (het, file, label) in [
            (Heterogeneity::Low, "fig4a.csv", "fig4a(lowH)"),
            (Heterogeneity::High, "fig4b.csv", "fig4b(highH)"),
        ] {
            let r = fig4(het, &ys, &scale);
            print!("{}", emit_fig4(&r, &args.out, file).expect("write fig4"));
            let finals: Vec<String> =
                r.runs.iter().map(|(y, _, res)| format!("Y={y}:{:.0}", res.makespan)).collect();
            summary.push(format!("{label}: final schedule lengths {}", finals.join(" ")));
        }
    }

    for (name, figure, file) in [
        ("fig5", FigureWorkload::Fig5, "fig5.csv"),
        ("fig6", FigureWorkload::Fig6, "fig6.csv"),
        ("fig7", FigureWorkload::Fig7, "fig7.csv"),
    ] {
        if !want(&args, name) {
            continue;
        }
        let r = fig5_7(figure, &scale);
        print!("{}", emit_race(&r, &args.out, file).expect("write race"));
        summary.push(format!(
            "{name}: SE best {:.0} ({} iters, {} evals) vs GA best {:.0} ({} gens, {} evals)",
            r.se.1.makespan,
            r.se.1.iterations,
            r.se.1.evaluations,
            r.ga.1.makespan,
            r.ga.1.iterations,
            r.ga.1.evaluations
        ));
    }

    // `agg` is opt-in only (not part of `all`): a 5-seed sweep at a real
    // evaluation budget takes minutes.
    if args.figures.iter().any(|f| f == "agg") {
        let seeds = [scale.seed, scale.seed + 1, scale.seed + 2, scale.seed + 3, scale.seed + 4];
        let evals = 300_000u64;
        let mut table =
            mshc_trace::CsvTable::new(["workload", "algo", "n", "mean", "std", "min", "max"]);
        for figure in [FigureWorkload::Fig5, FigureWorkload::Fig6, FigureWorkload::Fig7] {
            for row in aggregate_races(figure, &seeds, evals) {
                let s = row.summary;
                table.push_row([
                    row.workload.to_string(),
                    row.algo.to_string(),
                    s.n.to_string(),
                    format!("{:.1}", s.mean),
                    format!("{:.1}", s.std),
                    format!("{:.1}", s.min),
                    format!("{:.1}", s.max),
                ]);
                summary.push(format!(
                    "agg {} {}: mean {:.0} ± {:.0} (n={}, {evals} evals)",
                    row.workload, row.algo, s.mean, s.std, s.n
                ));
            }
        }
        table.write_file(args.out.join("aggregate_races.csv")).expect("write agg");
    }

    // Like `agg`, `contention` is opt-in only.
    if args.figures.iter().any(|f| f == "contention") {
        let mut table =
            mshc_trace::CsvTable::new(["workload", "contention_free", "per_pair_link", "ratio"]);
        for figure in FigureWorkload::ALL {
            let (free, linked) = contention_probe(figure, &scale);
            table.push_row([
                figure.name().to_string(),
                format!("{free:.1}"),
                format!("{linked:.1}"),
                format!("{:.3}", linked / free),
            ]);
            summary.push(format!(
                "contention {}: {:.0} -> {:.0} (x{:.3})",
                figure.name(),
                free,
                linked,
                linked / free
            ));
        }
        table.write_file(args.out.join("contention.csv")).expect("write contention");
    }

    if want(&args, "band") {
        for figure in FigureWorkload::ALL {
            let inst = figure.spec(scale.seed).generate();
            let band = baseline_band(&inst);
            emit_band(&band, &args.out, &format!("band_{}.csv", figure.name()))
                .expect("write band");
            let row: Vec<String> = band.iter().map(|(n, mk)| format!("{n}:{mk:.0}")).collect();
            summary.push(format!("band {}: {}", figure.name(), row.join(" ")));
        }
    }

    println!("\n## summary (paste into EXPERIMENTS.md)");
    for line in &summary {
        println!("- {line}");
    }
}
