//! Shared workload shapes for the evaluation-throughput probes.
//!
//! The criterion `batch_candidates`/`short_scan` groups and the
//! `bench_eval` binary (the `BENCH_eval.json` emitter) must measure the
//! *same* candidate grids so their numbers stay comparable; both build
//! them here — along with [`spawn_crew_chunks`], the per-call
//! scoped-crew executor the persistent pool replaced, kept as the
//! baseline side of the `pool_reuse_speedup` series.

use mshc_platform::{HcInstance, MachineId};
use mshc_schedule::{Descent, Solution};
use mshc_taskgraph::TaskId;
use rand::Rng;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The SE allocation-scan shape at its widest: picks the task of `base`
/// with the widest valid range (ties to the lowest id) and returns its
/// full `(position × machine)` candidate grid minus the incumbent
/// placement — the biggest realistic single-task fan-out on this
/// instance.
pub fn widest_move_grid(inst: &HcInstance, base: &Solution) -> (TaskId, Vec<(usize, MachineId)>) {
    let g = inst.graph();
    let t = g
        .tasks()
        .max_by_key(|&t| {
            let (lo, hi) = base.valid_range(g, t);
            hi - lo
        })
        .expect("non-empty graph");
    let (lo, hi) = base.valid_range(g, t);
    let moves = (lo..=hi)
        .flat_map(|pos| (0..inst.machine_count()).map(move |m| (pos, MachineId::from_usize(m))))
        .filter(|&(pos, m)| pos != base.position_of(t) || m != base.machine_of(t))
        .collect();
    (t, moves)
}

/// The first `limit` candidates of [`widest_move_grid`] — the
/// "short bounded scan" preset. After bound pruning cut 99%+ of the
/// candidates (PR 5), the scans the searches actually submit are this
/// size, where executor overhead (thread spawn vs pool wake) dominates
/// the scoring work; the `pool_reuse_speedup` series is measured on it.
pub fn short_move_grid(
    inst: &HcInstance,
    base: &Solution,
    limit: usize,
) -> (TaskId, Vec<(usize, MachineId)>) {
    let (t, mut moves) = widest_move_grid(inst, base);
    moves.truncate(limit);
    (t, moves)
}

/// The reconvergence-splice scan shape: every adjacent pair of
/// dependency-free segments on *different* machines yields the
/// transposition move `(left task, pos + 1, its own machine)`. Swapping
/// such a pair permutes the string without changing any per-machine
/// execution order or any transfer, so the replayed tail re-coincides
/// with the base walk and the splice fast path finishes the candidate
/// at the next checkpoint boundary.
///
/// The `spliced_fraction` series is measured on this grid.
/// [`widest_move_grid`] cannot exercise splicing: its single-task
/// fan-out puts the disturbed window's ceiling late in the string for
/// most candidates and the bound prunes 99%+ of them before any tail
/// could reconverge, which is why the series read 0.0 until it got its
/// own probe.
pub fn splice_move_grid(inst: &HcInstance, base: &Solution) -> Vec<(TaskId, usize, MachineId)> {
    let g = inst.graph();
    base.segments()
        .windows(2)
        .enumerate()
        .filter(|(_, w)| {
            w[0].machine != w[1].machine && g.successors(w[0].task).all(|s| s != w[1].task)
        })
        .map(|(p, w)| (w[0].task, p + 1, w[0].machine))
        .collect()
}

/// A converged-regime GA generation: `count` offspring bred from
/// `parents` with the default `GaConfig` operator mix at the selection
/// fixpoint, where crossover of near-identical parents is the identity.
/// Per child (matching the 0.6 crossover / 0.4 + 0.4 mutation rates):
/// 36% no effective mutation (a clone), 24% one scheduling move, 24%
/// one matching move, 16% both mutations on distinct tasks. Each child
/// carries the same [`Descent`] the GA's generation loop would record,
/// so `BatchEvaluator::score_population` sees exactly the shape the
/// parent-primed prefix-splicing path is built for; the
/// `ga_prefix_speedup_vs_full` series is measured on this cohort.
/// Needs at least two machines.
pub fn ga_offspring_cohort(
    inst: &HcInstance,
    parents: &[Solution],
    count: usize,
    rng: &mut impl Rng,
) -> (Vec<Solution>, Vec<Descent>) {
    // One random in-range relocation of a random task, machine kept;
    // None if the draw was a no-op (the incumbent position).
    fn sched_move(
        inst: &HcInstance,
        child: &mut Solution,
        rng: &mut impl Rng,
    ) -> Option<(TaskId, usize)> {
        let g = inst.graph();
        let t = TaskId::from_usize(rng.gen_range(0..inst.task_count()));
        let (lo, hi) = child.valid_range(g, t);
        let pos = rng.gen_range(lo..=hi);
        (pos != child.position_of(t)).then(|| {
            child.move_task(g, t, pos, child.machine_of(t)).expect("in-range");
            (t, pos)
        })
    }
    // A random reassignment of a random task to a different machine.
    fn match_move(
        inst: &HcInstance,
        child: &mut Solution,
        rng: &mut impl Rng,
    ) -> (TaskId, usize, MachineId) {
        let l = inst.machine_count();
        let t = TaskId::from_usize(rng.gen_range(0..inst.task_count()));
        let m = MachineId::from_usize((child.machine_of(t).index() + rng.gen_range(1..l)) % l);
        let pos = child.position_of(t);
        child.move_task(inst.graph(), t, pos, m).expect("same position");
        (t, pos, m)
    }
    let k = inst.task_count();
    let mut children = Vec::with_capacity(count);
    let mut descents = Vec::with_capacity(count);
    for i in 0..count {
        let parent = i % parents.len();
        let mut child = parents[parent].clone();
        let r: f64 = rng.gen();
        let descent = if r < 0.36 {
            // No effective mutation (crossover of converged parents is
            // the identity): the child IS the parent.
            Descent::Clone { parent }
        } else if r < 0.60 {
            match sched_move(inst, &mut child, rng) {
                Some((t, pos)) => {
                    Descent::Move { parent, task: t, pos, machine: child.machine_of(t) }
                }
                None => Descent::Clone { parent },
            }
        } else if r < 0.84 {
            let (t, pos, m) = match_move(inst, &mut child, rng);
            Descent::Move { parent, task: t, pos, machine: m }
        } else {
            // Both mutations on (usually) distinct tasks — the GA
            // classifies these by measured first divergence.
            sched_move(inst, &mut child, rng);
            match_move(inst, &mut child, rng);
            let diverge = parents[parent]
                .segments()
                .iter()
                .zip(child.segments())
                .position(|(a, b)| a != b)
                .unwrap_or(k);
            match diverge {
                d if d == k => Descent::Clone { parent },
                0 => Descent::Fresh,
                d => Descent::Suffix { parent, diverge: d },
            }
        };
        children.push(child);
        descents.push(descent);
    }
    (children, descents)
}

/// The pre-persistent-pool executor, preserved as a benchmark baseline:
/// spawns a fresh `std::thread::scope` crew **per call**, splits
/// `0..len` into the same chunk grid the vendored rayon uses
/// (`len.div_ceil(threads * 2)`), self-schedules chunks off an atomic
/// claim counter and merges results in chunk order. Bit-compatible with
/// the resident executor on the same fold — the only difference is
/// paying thread spawn/join latency on every invocation, which is
/// exactly what `pool_reuse_speedup` quantifies.
pub fn spawn_crew_chunks<T, F>(threads: usize, len: usize, fold_chunk: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        return vec![fold_chunk(0..len)];
    }
    let chunk_size = len.div_ceil(threads * 2).max(1);
    let num_chunks = len.div_ceil(chunk_size);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(num_chunks));
    std::thread::scope(|scope| {
        let worker = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= num_chunks {
                return;
            }
            let lo = i * chunk_size;
            let hi = (lo + chunk_size).min(len);
            let out = fold_chunk(lo..hi);
            results.lock().expect("crew results").push((i, out));
        };
        for _ in 1..threads.min(num_chunks) {
            scope.spawn(worker);
        }
        worker();
    });
    let mut chunks = results.into_inner().expect("crew results");
    chunks.sort_unstable_by_key(|&(i, _)| i);
    chunks.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_workloads::WorkloadSpec;
    use rand::SeedableRng;

    #[test]
    fn short_grid_is_a_prefix_of_the_widest_grid() {
        let inst = WorkloadSpec::small(3).generate();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let base = mshc_schedule::random_solution(&inst, &mut rng);
        let (t_full, full) = widest_move_grid(&inst, &base);
        let (t_short, short) = short_move_grid(&inst, &base, 24);
        assert_eq!(t_full, t_short);
        assert_eq!(short.len(), 24.min(full.len()));
        assert_eq!(&full[..short.len()], &short[..]);
    }

    #[test]
    fn spawn_crew_merges_in_chunk_order() {
        for threads in [1usize, 2, 4, 8] {
            for len in [0usize, 1, 7, 100] {
                let chunks = spawn_crew_chunks(threads, len, |r| r.collect::<Vec<usize>>());
                let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                assert_eq!(flat, (0..len).collect::<Vec<usize>>(), "{threads}t len {len}");
            }
        }
    }

    /// The splice grid must actually splice: scoring it with the fast
    /// path on finishes a healthy share of the candidates via
    /// reconvergence (the `spliced_fraction` series would silently read
    /// 0.0 again if the probe shape ever regressed), and every score is
    /// still bit-identical to a full pass over the mutated solution.
    #[test]
    fn splice_grid_reconverges_and_scores_exactly() {
        use mshc_schedule::{EvalSnapshot, Evaluator, IncrementalEvaluator, ObjectiveKind};
        let inst = WorkloadSpec::small(3).generate();
        let g = inst.graph();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let base = mshc_schedule::random_solution(&inst, &mut rng);
        let moves = splice_move_grid(&inst, &base);
        assert!(!moves.is_empty(), "a mixed random base has cross-machine adjacencies");
        let snapshot = EvalSnapshot::new(&inst);
        let obj = ObjectiveKind::Makespan;
        let mut inc = IncrementalEvaluator::with_snapshot(&snapshot);
        inc.set_pruning(false);
        inc.prime(&base);
        let mut eval = Evaluator::with_snapshot(&snapshot);
        let mut scratch = base.clone();
        for &(t, pos, m) in &moves {
            let (lo, hi) = base.valid_range(g, t);
            assert!((lo..=hi).contains(&pos), "transposition stays in the valid range");
            let spliced = inc.score_move(t, pos, m, &obj);
            scratch.clone_from(&base);
            scratch.move_task(g, t, pos, m).expect("in-range");
            assert_eq!(spliced, eval.objective_value(&scratch, &obj));
        }
        let stats = inc.stats();
        assert!(
            stats.spliced_fraction() > 0.5,
            "schedule-neutral transpositions must mostly splice, got {:.3} of {}",
            stats.spliced_fraction(),
            stats.scored,
        );
    }

    /// The GA cohort is valid input for `score_population`: every child
    /// scores bit-identically to a scalar pass, the converged-regime
    /// operator mix shows up (clones, moves and measured-divergence
    /// suffixes all present), and every descent label is truthful.
    #[test]
    fn ga_cohort_is_honest_and_scores_exactly() {
        use mshc_schedule::{BatchEvaluator, EvalSnapshot, Evaluator, ObjectiveKind};
        let inst = WorkloadSpec::small(3).generate();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let parents: Vec<_> =
            (0..4).map(|_| mshc_schedule::random_solution(&inst, &mut rng)).collect();
        let (children, descents) = ga_offspring_cohort(&inst, &parents, 60, &mut rng);
        assert_eq!(children.len(), 60);
        let clones = descents.iter().filter(|d| matches!(d, Descent::Clone { .. })).count();
        let moves = descents.iter().filter(|d| matches!(d, Descent::Move { .. })).count();
        let suffixes = descents.iter().filter(|d| matches!(d, Descent::Suffix { .. })).count();
        assert!(clones > 0 && moves > 0 && suffixes > 0, "{clones} / {moves} / {suffixes}");
        for (child, d) in children.iter().zip(&descents) {
            match *d {
                Descent::Clone { parent } => assert_eq!(child, &parents[parent]),
                Descent::Move { parent, task, pos, machine } => {
                    let mut rebuilt = parents[parent].clone();
                    rebuilt.move_task(inst.graph(), task, pos, machine).expect("in-range");
                    assert_eq!(child, &rebuilt);
                }
                Descent::Suffix { parent, diverge } => {
                    assert_eq!(child.segments()[..diverge], parents[parent].segments()[..diverge]);
                    assert_ne!(child.segments()[diverge], parents[parent].segments()[diverge]);
                }
                Descent::Fresh => {}
            }
        }
        let snapshot = EvalSnapshot::new(&inst);
        let obj = ObjectiveKind::Makespan;
        let mut eval = Evaluator::with_snapshot(&snapshot);
        let parent_costs: Vec<f64> =
            parents.iter().map(|p| eval.objective_value(p, &obj)).collect();
        let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let scores = pool.install(|| {
            let mut batch = BatchEvaluator::new(&snapshot);
            batch.score_population(&parents, &parent_costs, &children, &descents, &obj)
        });
        for (child, score) in children.iter().zip(&scores) {
            assert_eq!(*score, eval.objective_value(child, &obj));
        }
    }

    #[test]
    fn grid_excludes_incumbent_and_stays_in_range() {
        let inst = WorkloadSpec::small(3).generate();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let base = mshc_schedule::random_solution(&inst, &mut rng);
        let (t, moves) = widest_move_grid(&inst, &base);
        let (lo, hi) = base.valid_range(inst.graph(), t);
        assert!(!moves.is_empty());
        for &(pos, m) in &moves {
            assert!((lo..=hi).contains(&pos));
            assert!(m.index() < inst.machine_count());
            assert!(pos != base.position_of(t) || m != base.machine_of(t));
        }
        assert_eq!(moves.len(), (hi - lo + 1) * inst.machine_count() - 1);
    }
}
