//! Fig 4 bench target: "the timing requirements for the SE algorithm
//! increase as Y increases" (§5.2). Measures the cost of a fixed number
//! of SE iterations at Y = 5, 9, 12 on the large workload — the paper's
//! sweep points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mshc_core::{SeConfig, SeScheduler};
use mshc_schedule::{RunBudget, Scheduler};
use mshc_workloads::{FigureWorkload, Heterogeneity};
use std::hint::black_box;

fn bench_y_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_y_sweep");
    for (label, figure) in [("lowH", FigureWorkload::Fig4Low), ("highH", FigureWorkload::Fig4High)]
    {
        let inst = figure.spec(2001).generate();
        for &y in &[5usize, 9, 12] {
            group.bench_with_input(BenchmarkId::new(label, y), &y, |b, &y| {
                b.iter(|| {
                    let mut se = SeScheduler::new(SeConfig {
                        seed: 3,
                        selection_bias: 0.05,
                        y_limit: Some(y),
                        ..SeConfig::default()
                    });
                    black_box(se.run(&inst, &RunBudget::iterations(3), None).makespan)
                })
            });
        }
        let _ = Heterogeneity::Low; // documents the axis the group sweeps
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(8)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_y_sweep
}
criterion_main!(benches);
