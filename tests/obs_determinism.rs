//! The observability no-perturbation contract, end to end: enabling
//! metric recording must not change a single result bit — solutions,
//! objective values, evaluation counts, iteration counts, trace records
//! — for any scheduler, seed, objective, checkpoint stride, or thread
//! count. And the registry's deterministic plane must itself reproduce
//! bit-for-bit across identical fixed-thread runs.
//!
//! The registry is process-global, so every test here serializes
//! through one lock; this file is its own test binary, so no other
//! suite races it.

use mshc::obs;
use mshc::prelude::*;
use proptest::prelude::*;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The iterative schedulers covering all three evaluator tiers: SE and
/// tabu drive the bounded incremental scan, SA the plain incremental
/// path, the GA the population pass, random search the full evaluator.
fn make_scheduler(algo: &str, seed: u64) -> Box<dyn Scheduler> {
    match algo {
        "se" => Box::new(SeScheduler::new(SeConfig { seed, ..SeConfig::default() })),
        "ga" => Box::new(GaScheduler::new(GaConfig { seed, ..GaConfig::default() })),
        "sa" => Box::new(SimulatedAnnealing::new(SaConfig { seed, ..SaConfig::default() })),
        "tabu" => Box::new(TabuSearch::new(TabuConfig { seed, ..TabuConfig::default() })),
        "random" => Box::new(RandomSearch::new(seed)),
        other => panic!("unknown algo {other}"),
    }
}

/// One trace record with floats as bits and `elapsed_secs` dropped —
/// wall clock is the one axis that legitimately varies between runs.
type TraceBits = (u64, u64, u64, u64, Option<u32>, Option<u64>);

/// Everything a run produces that the determinism contract covers, with
/// floats captured as bits.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RunFingerprint {
    solution: Solution,
    objective_bits: u64,
    makespan_bits: u64,
    iterations: u64,
    evaluations: u64,
    early_stopped: bool,
    trace: Vec<TraceBits>,
}

fn run_fingerprinted(
    algo: &str,
    inst: &HcInstance,
    budget: &RunBudget,
    seed: u64,
    threads: usize,
    record: bool,
) -> (RunFingerprint, obs::DeterministicPlane) {
    obs::reset();
    obs::enable(record);
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
    let mut trace = Trace::new();
    let result = pool.install(|| make_scheduler(algo, seed).run(inst, budget, Some(&mut trace)));
    let det = obs::snapshot().deterministic;
    obs::enable(false);
    let fp = RunFingerprint {
        solution: result.solution,
        objective_bits: result.objective_value.to_bits(),
        makespan_bits: result.makespan.to_bits(),
        iterations: result.iterations,
        evaluations: result.evaluations,
        early_stopped: result.early_stopped,
        trace: trace
            .records()
            .iter()
            .map(|r| {
                (
                    r.iteration,
                    r.evaluations,
                    r.current_cost.to_bits(),
                    r.best_cost.to_bits(),
                    r.selected,
                    r.population_mean.map(f64::to_bits),
                )
            })
            .collect(),
    };
    (fp, det)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Metrics-on and metrics-off runs are bit-identical in every
    /// result dimension, across seeds x objectives x strides x {1,2,8}
    /// threads, for every scheduler tier.
    #[test]
    fn recording_cannot_perturb_any_result_bit(
        seed in any::<u64>(),
        algo_idx in 0usize..5,
        obj_idx in 0usize..2,
        stride_idx in 0usize..3,
    ) {
        let _guard = lock();
        let algo = ["se", "ga", "sa", "tabu", "random"][algo_idx];
        let objective = [ObjectiveKind::Makespan, ObjectiveKind::TotalFlowtime][obj_idx];
        let stride = [None, Some(1), Some(3)][stride_idx];
        let inst = WorkloadSpec { tasks: 16, machines: 3, ..WorkloadSpec::small(seed) }.generate();
        let mut budget = RunBudget::iterations(10).with_objective(objective);
        budget.checkpoint_stride = stride;
        let (reference, _) = run_fingerprinted(algo, &inst, &budget, seed, 1, false);
        for threads in [1usize, 2, 8] {
            let (off, _) = run_fingerprinted(algo, &inst, &budget, seed, threads, false);
            prop_assert_eq!(
                &off, &reference,
                "{} must be thread-count invariant with metrics off", algo
            );
            let (on, _) = run_fingerprinted(algo, &inst, &budget, seed, threads, true);
            prop_assert_eq!(
                &on, &reference,
                "{} at {} threads: metrics-on must be bit-identical to metrics-off",
                algo, threads
            );
        }
    }

    /// Two identical fixed-thread runs produce the same deterministic
    /// plane, counter for counter — the plane earns its name.
    #[test]
    fn deterministic_plane_reproduces_at_fixed_thread_count(
        seed in any::<u64>(),
        algo_idx in 0usize..5,
    ) {
        let _guard = lock();
        let algo = ["se", "ga", "sa", "tabu", "random"][algo_idx];
        let inst = WorkloadSpec { tasks: 16, machines: 3, ..WorkloadSpec::small(seed) }.generate();
        let budget = RunBudget::iterations(8);
        for threads in [1usize, 4] {
            let (_, first) = run_fingerprinted(algo, &inst, &budget, seed, threads, true);
            let (_, second) = run_fingerprinted(algo, &inst, &budget, seed, threads, true);
            prop_assert_eq!(
                first, second,
                "{} at {} threads: deterministic plane must reproduce", algo, threads
            );
        }
    }
}

/// The registry's iteration and evaluation counters agree with the
/// `RunResult` bookkeeping across the whole portfolio — the accessors
/// stayed truthful when they moved onto the registry.
#[test]
fn registry_counters_match_run_result_bookkeeping() {
    let _guard = lock();
    let inst = WorkloadSpec::small(7).generate();
    let budget = RunBudget::iterations(12);
    for algo in ["se", "ga", "sa", "tabu", "random"] {
        obs::reset();
        obs::enable(true);
        let result = make_scheduler(algo, 7).run(&inst, &budget, None);
        let det = obs::snapshot().deterministic;
        obs::enable(false);
        assert_eq!(det.iterations, result.iterations, "{algo}: iteration counters must agree");
        // The registry counts *physical* work: full passes plus
        // incremental scorings. `RunResult::evaluations` is a *charge*
        // model — primes, fold-derived cost reads and clone shortcuts
        // are charged for budget stability even when no replay runs —
        // so the physical counters bound the report from below and must
        // see real work; exact equality is not a contract.
        let physical = det.evaluations + det.scan_scored;
        assert!(physical > 0, "{algo}: the registry must see the evaluation work");
        assert!(
            physical <= result.evaluations,
            "{algo}: physical work ({physical}) cannot exceed the charged count ({})",
            result.evaluations
        );
    }
}

/// Tournament leaderboards are byte-identical with recording on and
/// off — the CI gate's in-process twin.
#[test]
fn tournament_leaderboard_is_byte_identical_with_recording_on() {
    let _guard = lock();
    let spec = TournamentSpec {
        algorithms: vec!["se".into(), "sa".into(), "heft".into()],
        seeds: vec![3, 5],
        iterations: 8,
        ..TournamentSpec::new("tiny", mshc::workloads::tiny_suite())
    };
    let board_json = |record: bool| {
        obs::reset();
        obs::enable(record);
        let run = run_tournament(&spec).expect("tiny tournament runs");
        obs::enable(false);
        serde_json::to_string(&mshc::portfolio::aggregate(&run).0).expect("serializes")
    };
    let off = board_json(false);
    let on = board_json(true);
    assert_eq!(on, off, "recording must not change a leaderboard byte");
}
