//! Hermetic stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` harness surface with
//! a simple wall-clock measurement loop: per benchmark it warms up,
//! then runs timed batches until the measurement budget is spent, and
//! reports the median per-iteration time to stdout. When invoked by
//! `cargo test` (the harness receives `--test`), every benchmark routine
//! executes exactly once as a smoke test.
//!
//! There is no statistical analysis, plotting or `target/criterion`
//! output — this shim exists so benches compile, run and emit usable
//! numbers in an offline build.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and registry.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut test_mode = false;
        let mut filter = None;
        // Flags that take no value; anything else starting with '-' is
        // assumed to consume the following argument, so that e.g.
        // `--sample-size 50` doesn't turn `50` into a benchmark filter.
        const BOOLEAN_FLAGS: &[&str] = &[
            "--test",
            "--bench",
            "--list",
            "--exact",
            "--verbose",
            "--quiet",
            "--nocapture",
            "--ignored",
            "--include-ignored",
        ];
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                a if BOOLEAN_FLAGS.contains(&a) => {}
                a if a.starts_with('-') => {
                    // `--flag=value` is self-contained; `--flag value`
                    // consumes the next argument.
                    if !a.contains('=') {
                        args.next();
                    }
                }
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of benchmarks. The group inherits the
    /// harness configuration; overrides on the group stay group-local.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup { criterion: self, name: name.into(), sample_size, measurement_time }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let (samples, time) = (self.sample_size, self.measurement_time);
        self.run_one_with(id, samples, time, f);
    }

    fn run_one_with<F>(
        &mut self,
        id: &str,
        sample_size: usize,
        measurement_time: Duration,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher { mode: Mode::TestOnce, samples: Vec::new() };
            f(&mut b);
            println!("test-mode smoke: {id} ... ok");
            return;
        }
        // Warm-up: run until the warm-up budget is spent.
        let mut b = Bencher {
            mode: Mode::Timed { budget: self.warm_up_time, samples_wanted: 1 },
            samples: Vec::new(),
        };
        f(&mut b);
        // Measurement.
        let mut b = Bencher {
            mode: Mode::Timed { budget: measurement_time, samples_wanted: sample_size },
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(id);
    }
}

/// A named group of benchmarks. Group-scoped `sample_size` /
/// `measurement_time` overrides apply only within the group (as in real
/// criterion) — they do not leak into the parent harness after
/// `finish()`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one_with(&full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion
            .run_one_with(&full, self.sample_size, self.measurement_time, |b| f(b, input));
        self
    }

    /// Finish the group (formatting no-op).
    pub fn finish(self) {}
}

/// A function name + parameter pair identifying one benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { text: format!("{}/{}", name.into(), parameter) }
    }

    /// Parameter-only id, for when the group name already says it all.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { text: parameter.to_string() }
    }
}

/// Conversion into the printable benchmark id.
pub trait IntoBenchmarkId {
    /// The printable id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

enum Mode {
    /// `cargo test` smoke: one execution, no timing.
    TestOnce,
    /// Timed batches until the budget is spent or enough samples exist.
    Timed { budget: Duration, samples_wanted: usize },
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure the routine repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::TestOnce => {
                black_box(routine());
            }
            Mode::Timed { budget, samples_wanted } => {
                // Calibrate: how many iterations fit one sample slot?
                let slot = budget.as_secs_f64() / samples_wanted as f64;
                let t0 = Instant::now();
                black_box(routine());
                let once = t0.elapsed().as_secs_f64().max(1e-9);
                let iters_per_sample = (slot / once).clamp(1.0, 1e9) as u64;
                let deadline = Instant::now() + budget;
                for _ in 0..samples_wanted {
                    let t = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(routine());
                    }
                    self.samples.push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        println!(
            "{id:<60} time: [{} {} {}]  ({} samples)",
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi),
            self.samples.len()
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// Declare a benchmark group: plain `criterion_group!(name, fns...)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(30),
            warm_up_time: Duration::from_millis(5),
            test_mode: false,
            filter: None,
        }
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = quick();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2).measurement_time(Duration::from_millis(20));
        g.bench_with_input(BenchmarkId::new("param", 40), &40usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        // Group overrides stay group-local, as in real criterion.
        assert_eq!(c.sample_size, 3);
        assert_eq!(c.measurement_time, Duration::from_millis(30));
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = quick();
        c.test_mode = true;
        let mut runs = 0;
        c.bench_function("once", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 1);
    }
}
