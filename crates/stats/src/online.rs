//! Welford's online mean/variance accumulator — numerically stable and
//! O(1) memory, used where a run streams thousands of observations.

/// Streaming mean/variance/extremes accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "observations must be finite");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n−1; 0 when n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator (parallel reduction — Chan et al.).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / total as f64;
        self.n = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_batch() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut o = OnlineStats::new();
        for &x in &data {
            o.push(x);
        }
        assert_eq!(o.count(), 8);
        assert!((o.mean() - 5.0).abs() < 1e-12);
        assert!((o.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(o.min(), 2.0);
        assert_eq!(o.max(), 9.0);
    }

    #[test]
    fn empty_and_single() {
        let o = OnlineStats::new();
        assert_eq!(o.count(), 0);
        assert_eq!(o.variance(), 0.0);
        let mut o = OnlineStats::new();
        o.push(4.0);
        assert_eq!(o.mean(), 4.0);
        assert_eq!(o.std(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..57).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..20] {
            a.push(x);
        }
        for &x in &data[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn numerical_stability_large_offset() {
        let mut o = OnlineStats::new();
        for i in 0..1000 {
            o.push(1e9 + (i % 7) as f64);
        }
        assert!(o.variance() >= 0.0);
        assert!(o.variance() < 10.0);
    }
}
