//! Named (x, y) series with downsampling.

use serde::{Deserialize, Serialize};

/// A named sequence of `(x, y)` points, x non-decreasing by convention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series { name: name.into(), points: Vec::new() }
    }

    /// Wraps existing points.
    pub fn from_points(name: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series { name: name.into(), points }
    }

    /// Series name (CSV column / plot legend).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the series, builder-style.
    pub fn renamed(mut self, name: impl Into<String>) -> Series {
        self.name = name.into();
        self
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `(min_x, max_x, min_y, max_y)`; `None` when empty.
    pub fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        if self.points.is_empty() {
            return None;
        }
        let mut b = (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &self.points {
            b.0 = b.0.min(x);
            b.1 = b.1.max(x);
            b.2 = b.2.min(y);
            b.3 = b.3.max(y);
        }
        Some(b)
    }

    /// Keeps at most `max_points` points by uniform stride sampling,
    /// always retaining the first and last point. Figures with 10⁴+
    /// iterations downsample before CSV export.
    pub fn downsampled(&self, max_points: usize) -> Series {
        assert!(max_points >= 2, "need at least first and last point");
        if self.points.len() <= max_points {
            return self.clone();
        }
        let stride = (self.points.len() - 1) as f64 / (max_points - 1) as f64;
        let mut pts = Vec::with_capacity(max_points);
        for i in 0..max_points {
            let idx = (i as f64 * stride).round() as usize;
            pts.push(self.points[idx.min(self.points.len() - 1)]);
        }
        pts.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        Series { name: self.name.clone(), points: pts }
    }

    /// Running minimum of y (turns a "current cost" series into a
    /// "best so far" series).
    pub fn running_min(&self) -> Series {
        let mut best = f64::INFINITY;
        let pts = self
            .points
            .iter()
            .map(|&(x, y)| {
                best = best.min(y);
                (x, best)
            })
            .collect();
        Series { name: format!("{}_min", self.name), points: pts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_bounds() {
        let mut s = Series::new("a");
        assert!(s.is_empty());
        assert_eq!(s.bounds(), None);
        s.push(0.0, 5.0);
        s.push(2.0, 1.0);
        s.push(4.0, 3.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.bounds(), Some((0.0, 4.0, 1.0, 5.0)));
        assert_eq!(s.name(), "a");
    }

    #[test]
    fn renamed_builder() {
        let s = Series::from_points("x", vec![(0.0, 0.0)]).renamed("y");
        assert_eq!(s.name(), "y");
    }

    #[test]
    fn downsample_keeps_ends() {
        let pts: Vec<(f64, f64)> = (0..1000).map(|i| (i as f64, (i * i) as f64)).collect();
        let s = Series::from_points("big", pts);
        let d = s.downsampled(50);
        assert!(d.len() <= 50);
        assert_eq!(d.points()[0], (0.0, 0.0));
        assert_eq!(*d.points().last().unwrap(), (999.0, 998001.0));
    }

    #[test]
    fn downsample_noop_when_small() {
        let s = Series::from_points("s", vec![(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(s.downsampled(10), s);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn downsample_rejects_tiny_budget() {
        Series::from_points("s", vec![(0.0, 1.0)]).downsampled(1);
    }

    #[test]
    fn running_min_monotone() {
        let s = Series::from_points("c", vec![(0.0, 5.0), (1.0, 7.0), (2.0, 3.0), (3.0, 4.0)]);
        let m = s.running_min();
        assert_eq!(m.points(), &[(0.0, 5.0), (1.0, 5.0), (2.0, 3.0), (3.0, 3.0)]);
        assert_eq!(m.name(), "c_min");
    }
}
