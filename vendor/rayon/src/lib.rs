//! Hermetic stand-in for `rayon` with **real** thread parallelism.
//!
//! The offline build vendors the subset of rayon's API the suite uses
//! (`par_iter`, `map`, `map_init`, `enumerate`, `min_by`, `collect`,
//! `join`, ...) on top of a `std::thread::scope`-based chunked executor:
//! an input of `n` indexed items is split into contiguous chunks, a small
//! crew of scoped worker threads drains the chunk queue, and per-chunk
//! results are merged back **in chunk order**, so every consumer is
//! deterministic — the outcome is bit-identical at any thread count.
//!
//! Pool sizing, most specific wins:
//!
//! 1. a [`ThreadPool::install`] scope on the calling thread;
//! 2. the process-wide size set by [`ThreadPoolBuilder::build_global`];
//! 3. the `RAYON_NUM_THREADS` environment variable;
//! 4. [`std::thread::available_parallelism`].
//!
//! With an effective size of 1 everything runs inline on the calling
//! thread with zero spawn overhead. Replacing this crate with the real
//! rayon is a manifest-only change — call sites compile unmodified.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Pool sizing
// ---------------------------------------------------------------------------

/// Process-wide pool size set by `build_global` (0 = unset).
static GLOBAL_POOL_SIZE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`] (0 = none).
    static INSTALLED_POOL_SIZE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The number of worker threads parallel operations on this thread use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_POOL_SIZE.with(std::cell::Cell::get);
    if installed > 0 {
        return installed;
    }
    let global = GLOBAL_POOL_SIZE.load(AtomicOrdering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Ok(raw) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Error building a thread pool (shape-compatible with rayon's).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
///
/// `num_threads(0)` (the default) means "derive from the environment".
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with environment-derived sizing.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Builds a scoped pool handle; run closures under its size with
    /// [`ThreadPool::install`].
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let size = if self.num_threads > 0 { self.num_threads } else { current_num_threads() };
        Ok(ThreadPool { size })
    }

    /// Sets the process-wide pool size. Unlike real rayon, calling this
    /// twice simply overwrites the size instead of erroring — the shim
    /// has no live pool to reconfigure.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let size = if self.num_threads > 0 { self.num_threads } else { current_num_threads() };
        GLOBAL_POOL_SIZE.store(size, AtomicOrdering::Relaxed);
        Ok(())
    }
}

/// A sized pool handle. The shim spawns scoped threads per operation, so
/// the handle only carries the size; `install` scopes it to a closure.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    size: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.size
    }

    /// Runs `op` with this pool's size governing every parallel
    /// operation started from the calling thread inside `op`.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_POOL_SIZE.with(|c| c.replace(self.size));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_POOL_SIZE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(previous);
        op()
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Runs both closures, potentially in parallel, and returns both results
/// (`a`'s computed on the calling thread).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        let rb = handle.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        (ra, rb)
    })
}

// ---------------------------------------------------------------------------
// The chunked executor
// ---------------------------------------------------------------------------

/// Splits `0..len` into chunks and folds each with `fold_chunk` on a crew
/// of scoped threads; returns the chunk results **in chunk order**. The
/// chunk grid depends only on `len`, `min_len` and the thread count — and
/// every consumer below merges chunk results associatively with the same
/// semantics the sequential fold has — so results do not depend on
/// scheduling.
fn run_chunks<Out, F>(len: usize, min_len: usize, fold_chunk: F) -> Vec<Out>
where
    Out: Send,
    F: Fn(Range<usize>) -> Out + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = current_num_threads();
    if threads <= 1 || len <= min_len.max(1) {
        return vec![fold_chunk(0..len)];
    }
    // A few chunks per worker amortizes imbalance without shrinking
    // chunks below the caller's splitting hint.
    let chunk_size = len.div_ceil(threads * 2).max(min_len.max(1));
    let num_chunks = len.div_ceil(chunk_size);
    if num_chunks <= 1 {
        return vec![fold_chunk(0..len)];
    }
    let next_chunk = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Out)>> = Mutex::new(Vec::with_capacity(num_chunks));
    let worker = || loop {
        let i = next_chunk.fetch_add(1, AtomicOrdering::Relaxed);
        if i >= num_chunks {
            break;
        }
        let lo = i * chunk_size;
        let hi = (lo + chunk_size).min(len);
        let out = fold_chunk(lo..hi);
        results.lock().expect("executor poisoned").push((i, out));
    };
    std::thread::scope(|scope| {
        for _ in 1..threads.min(num_chunks) {
            scope.spawn(worker);
        }
        worker();
    });
    let mut chunks = results.into_inner().expect("executor poisoned");
    chunks.sort_unstable_by_key(|&(i, _)| i);
    chunks.into_iter().map(|(_, out)| out).collect()
}

// ---------------------------------------------------------------------------
// ParallelIterator
// ---------------------------------------------------------------------------

/// A splittable, indexed source of items plus rayon's adaptor/consumer
/// surface.
///
/// The producer half (`par_len` / `produce`) is shim plumbing: adaptors
/// wrap it, consumers drive it chunk-by-chunk through the executor. Item
/// `i` must not depend on which chunk it lands in — all the standard
/// combinators satisfy this by construction (`map_init` state is scratch,
/// re-created per chunk, exactly like rayon's per-worker state).
pub trait ParallelIterator: Sync + Sized {
    /// The item type produced.
    type Item: Send;

    /// Total number of items.
    fn par_len(&self) -> usize;

    /// Minimum chunk length hint (see [`with_min_len`](Self::with_min_len)).
    fn min_len_hint(&self) -> usize {
        1
    }

    /// Feeds the items at indices `range`, in index order, into `sink`
    /// as `(index, item)` pairs. Shim plumbing — not part of rayon's API.
    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, Self::Item));

    // ---- adaptors --------------------------------------------------------

    /// Maps each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Maps each item through `f` with per-worker scratch state: `init`
    /// runs once per chunk (so at least once per participating thread)
    /// and the resulting state is threaded through that chunk's items.
    /// Results must therefore not depend on state carried *across* items
    /// — treat the state as scratch (buffers, cloned bases, RNG-free
    /// evaluators), exactly as with real rayon.
    fn map_init<St, Init, F, R>(self, init: Init, f: F) -> MapInit<Self, Init, F>
    where
        Init: Fn() -> St + Sync,
        F: Fn(&mut St, Self::Item) -> R + Sync,
        R: Send,
    {
        MapInit { base: self, init, f }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Splitting hint: chunks will hold at least `min` items.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min: min.max(1) }
    }

    // ---- consumers -------------------------------------------------------

    /// Runs `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let len = self.par_len();
        run_chunks(len, self.min_len_hint(), |range| {
            self.produce(range, &mut |_, item| f(item));
        });
    }

    /// Collects all items, preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// The minimum item under `cmp`; the **first** of equal minima, like
    /// [`Iterator::min_by`] (sequential parity at any thread count).
    fn min_by<F>(self, cmp: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> Ordering + Sync,
    {
        let len = self.par_len();
        let chunks = run_chunks(len, self.min_len_hint(), |range| {
            let mut best: Option<Self::Item> = None;
            self.produce(range, &mut |_, item| match &best {
                Some(cur) if cmp(&item, cur) != Ordering::Less => {}
                _ => best = Some(item),
            });
            best
        });
        chunks.into_iter().flatten().reduce(|acc, item| {
            if cmp(&item, &acc) == Ordering::Less {
                item
            } else {
                acc
            }
        })
    }

    /// The maximum item under `cmp`; the **last** of equal maxima, like
    /// [`Iterator::max_by`].
    fn max_by<F>(self, cmp: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> Ordering + Sync,
    {
        let len = self.par_len();
        let chunks = run_chunks(len, self.min_len_hint(), |range| {
            let mut best: Option<Self::Item> = None;
            self.produce(range, &mut |_, item| match &best {
                Some(cur) if cmp(&item, cur) == Ordering::Less => {}
                _ => best = Some(item),
            });
            best
        });
        chunks.into_iter().flatten().reduce(|acc, item| {
            if cmp(&item, &acc) == Ordering::Less {
                acc
            } else {
                item
            }
        })
    }

    /// Sums the items (chunk sums added in chunk order).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let len = self.par_len();
        run_chunks(len, self.min_len_hint(), |range| {
            let mut items = Vec::with_capacity(range.len());
            self.produce(range, &mut |_, item| items.push(item));
            items.into_iter().sum::<S>()
        })
        .into_iter()
        .sum()
    }

    /// Number of items.
    fn count(self) -> usize {
        self.par_len()
    }
}

/// Collection types buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection, preserving index order.
    fn from_par_iter<P>(par_iter: P) -> Self
    where
        P: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P>(par_iter: P) -> Vec<T>
    where
        P: ParallelIterator<Item = T>,
    {
        let len = par_iter.par_len();
        let chunks = run_chunks(len, par_iter.min_len_hint(), |range| {
            let mut items = Vec::with_capacity(range.len());
            par_iter.produce(range, &mut |_, item| items.push(item));
            items
        });
        let mut out = Vec::with_capacity(len);
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Borrowing parallel iterator over a slice.
#[derive(Debug)]
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, &'a T)) {
        for i in range {
            sink(i, &self.slice[i]);
        }
    }
}

/// Borrowing conversion into a parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type produced.
    type Item: Send + 'a;

    /// Iterate the collection in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// Owning parallel iterator over a vector (items cloned out per chunk —
/// a shim simplification; real rayon splits ownership).
#[derive(Debug)]
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Clone + Send + Sync> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn par_len(&self) -> usize {
        self.items.len()
    }

    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, T)) {
        for i in range {
            sink(i, self.items[i].clone());
        }
    }
}

/// Parallel iterator over an integer range.
#[derive(Debug)]
pub struct RangeParIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;

    fn par_len(&self) -> usize {
        self.len
    }

    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, usize)) {
        for i in range {
            sink(i, self.start + i);
        }
    }
}

/// Owning conversion into a parallel iterator (`.into_par_iter()`).
pub trait IntoParallelIterator {
    /// The iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type produced.
    type Item: Send;

    /// Consume the collection into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Clone + Send + Sync> IntoParallelIterator for Vec<T> {
    type Iter = VecParIter<T>;
    type Item = T;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeParIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeParIter {
        RangeParIter { start: self.start, len: self.end.saturating_sub(self.start) }
    }
}

// ---------------------------------------------------------------------------
// Adaptors
// ---------------------------------------------------------------------------

/// Iterator returned by [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, R)) {
        self.base.produce(range, &mut |i, item| sink(i, (self.f)(item)));
    }
}

/// Iterator returned by [`ParallelIterator::map_init`].
pub struct MapInit<P, Init, F> {
    base: P,
    init: Init,
    f: F,
}

impl<P, St, Init, F, R> ParallelIterator for MapInit<P, Init, F>
where
    P: ParallelIterator,
    Init: Fn() -> St + Sync,
    F: Fn(&mut St, P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, R)) {
        let mut state = (self.init)();
        self.base.produce(range, &mut |i, item| sink(i, (self.f)(&mut state, item)));
    }
}

/// Iterator returned by [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
}

impl<P> ParallelIterator for Enumerate<P>
where
    P: ParallelIterator,
{
    type Item = (usize, P::Item);

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, (usize, P::Item))) {
        self.base.produce(range, &mut |i, item| sink(i, (i, item)));
    }
}

/// Iterator returned by [`ParallelIterator::with_min_len`].
pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P> ParallelIterator for MinLen<P>
where
    P: ParallelIterator,
{
    type Item = P::Item;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn min_len_hint(&self) -> usize {
        self.min.max(self.base.min_len_hint())
    }

    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, P::Item)) {
        self.base.produce(range, sink);
    }
}

/// The glob-import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().expect("build never fails")
    }

    #[test]
    fn collect_preserves_order_at_any_thread_count() {
        let xs: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = xs.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 16] {
            let out: Vec<u64> =
                pool(threads).install(|| xs.par_iter().map(|&x| x * 3 + 1).collect());
            assert_eq!(out, expected, "{threads} threads");
        }
    }

    #[test]
    fn map_init_state_is_per_chunk_scratch() {
        // Per-item results must not rely on cross-item state; verify the
        // scratch pattern (state reused as a buffer, output independent).
        let xs: Vec<u32> = (0..512).collect();
        for threads in [1, 3, 8] {
            let out: Vec<u64> = pool(threads).install(|| {
                xs.par_iter()
                    .enumerate()
                    .map_init(Vec::<u32>::new, |buf, (i, &x)| {
                        buf.clear();
                        buf.extend([x, x + 1]);
                        buf.iter().map(|&v| v as u64).sum::<u64>() + i as u64
                    })
                    .collect()
            });
            let expected: Vec<u64> =
                xs.iter().enumerate().map(|(i, &x)| (2 * x + 1) as u64 + i as u64).collect();
            assert_eq!(out, expected, "{threads} threads");
        }
    }

    #[test]
    fn min_by_matches_sequential_first_minimum() {
        // Duplicate minima: the first one must win, as with Iterator::min_by.
        let xs = vec![5.0f64, 1.0, 9.0, 1.0, 7.0, 1.0];
        for threads in [1, 2, 8] {
            let got = pool(threads).install(|| {
                xs.par_iter().enumerate().map(|(i, &x)| (i, x)).min_by(|a, b| a.1.total_cmp(&b.1))
            });
            assert_eq!(got, Some((1, 1.0)), "{threads} threads");
        }
    }

    #[test]
    fn max_by_matches_sequential_last_maximum() {
        let xs = vec![3, 9, 2, 9, 1];
        let seq = xs.iter().enumerate().max_by(|a, b| a.1.cmp(b.1));
        for threads in [1, 2, 8] {
            let got =
                pool(threads).install(|| xs.par_iter().enumerate().max_by(|a, b| a.1.cmp(b.1)));
            assert_eq!(got.map(|(i, _)| i), seq.map(|(i, _)| i), "{threads} threads");
        }
    }

    #[test]
    fn sum_and_count_and_for_each() {
        let xs: Vec<u64> = (1..=100).collect();
        let total: u64 = pool(4).install(|| xs.par_iter().map(|&x| x).sum());
        assert_eq!(total, 5050);
        assert_eq!(xs.par_iter().count(), 100);
        let hits = AtomicUsize::new(0);
        pool(4).install(|| {
            xs.par_iter().for_each(|_| {
                hits.fetch_add(1, AtomicOrdering::Relaxed);
            })
        });
        assert_eq!(hits.load(AtomicOrdering::Relaxed), 100);
    }

    #[test]
    fn into_par_iter_over_ranges_and_vecs() {
        let squares: Vec<usize> =
            pool(4).install(|| (0..50usize).into_par_iter().map(|i| i * i).collect());
        assert_eq!(squares[49], 49 * 49);
        let doubled: Vec<i32> =
            pool(2).install(|| vec![1, 2, 3].into_par_iter().map(|x| x * 2).collect());
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn with_min_len_caps_splitting() {
        // One chunk when min_len >= len: map_init's init runs exactly once.
        let inits = AtomicUsize::new(0);
        let out: Vec<u32> = pool(8).install(|| {
            vec![1u32; 64]
                .par_iter()
                .with_min_len(64)
                .map_init(
                    || {
                        inits.fetch_add(1, AtomicOrdering::Relaxed);
                    },
                    |_, &x| x,
                )
                .collect()
        });
        assert_eq!(out.len(), 64);
        assert_eq!(inits.load(AtomicOrdering::Relaxed), 1);
    }

    #[test]
    fn join_returns_both_and_propagates_order() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
        let (a, b) = pool(4).install(|| join(|| (0..1000u64).sum::<u64>(), || 7u64));
        assert_eq!(a, 499_500);
        assert_eq!(b, 7);
    }

    #[test]
    fn install_scopes_the_pool_size() {
        let outer = current_num_threads();
        let inner = pool(3).install(current_num_threads);
        assert_eq!(inner, 3);
        assert_eq!(current_num_threads(), outer, "install must restore on exit");
    }

    #[test]
    fn empty_inputs_are_fine() {
        let xs: Vec<u32> = Vec::new();
        let out: Vec<u32> = pool(4).install(|| xs.par_iter().map(|&x| x).collect());
        assert!(out.is_empty());
        assert_eq!(xs.par_iter().min_by(|a, b| a.cmp(b)), None);
    }
}
