//! # mshc-platform
//!
//! Heterogeneous-computing platform substrate for the `mshc` suite
//! (reproduction of Barada/Sait/Baig, IPPS 2001).
//!
//! The paper's HC model (§2): a set of `l` fully connected machines, each
//! with its own architecture; an `l × k` **execution-time matrix** `E`
//! giving the estimated run time of every subtask on every machine (from
//! code profiling / analytical benchmarking); and an `l(l-1)/2 × p`
//! **transfer-time matrix** `Tr` giving the time to move each data item
//! across each machine pair. Transfers between co-located tasks are free.
//!
//! * [`Machine`], [`MachineId`], [`ArchClass`] — machine descriptions;
//! * [`Matrix`] — flat row-major `f64` matrix (one allocation, cache-
//!   friendly row iteration);
//! * [`pair_index`]/[`pair_count`] — canonical indexing of unordered
//!   machine pairs, the row key of `Tr`;
//! * [`HcSystem`] — validated `machines + E + Tr` bundle;
//! * [`HcInstance`] — a task graph plus the system it runs on: the complete
//!   MSHC problem instance consumed by every scheduler in the suite;
//! * [`metrics`] — the paper's workload-characterization axes measured on
//!   an instance: heterogeneity and communication-to-cost ratio (CCR).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod instance;
pub mod machine;
pub mod matrix;
pub mod metrics;
pub mod pair;
pub mod system;

pub use error::PlatformError;
pub use instance::HcInstance;
pub use machine::{ArchClass, Machine, MachineId};
pub use matrix::Matrix;
pub use metrics::InstanceMetrics;
pub use pair::{pair_count, pair_index};
pub use system::HcSystem;
