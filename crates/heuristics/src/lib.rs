//! # mshc-heuristics — classic static-mapping baselines
//!
//! The SE paper positions itself against the broader heterogeneous-
//! scheduling literature it cites: the Braun et al. comparison study of
//! static mapping heuristics \[4\] and the list-scheduling algorithms of
//! Topcuoglu et al. \[5\]. This crate implements that baseline suite on the
//! same [`mshc_platform::HcInstance`] / [`mshc_schedule::Solution`]
//! substrate, so every algorithm is directly comparable with SE and GA:
//!
//! * **one-shot constructive** ([`list`], [`heft`]):
//!   MET, MCT, OLB, min-min, max-min, HEFT, CPOP;
//! * **iterative metaheuristics** ([`search`]): random search, simulated
//!   annealing, tabu search (budget-driven anytime algorithms, like
//!   SE/GA).
//!
//! All implement [`mshc_schedule::Scheduler`]. Constructive heuristics
//! ignore the budget (they finish in one pass and report
//! `iterations == 1`).
//!
//! The HEFT implementation uses the *append* (non-insertion) EFT policy:
//! a task is placed at the end of the chosen machine's current order.
//! This matches the evaluation model of the whole suite (per-machine
//! orders read off the solution string) and keeps every heuristic's
//! internal times bit-identical to the shared evaluator's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod heft;
pub mod list;
pub mod search;

pub use builder::ListScheduleBuilder;
pub use heft::{CpopScheduler, HeftScheduler};
pub use list::{ListPolicy, ListScheduler};
pub use search::{RandomSearch, SaConfig, SimulatedAnnealing, TabuConfig, TabuSearch};
