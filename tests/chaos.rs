//! Chaos suite: seeded fault injection against the whole stack. The
//! contract under test — no hang, no panic escapes the harness
//! boundaries, every surviving result is a valid schedule with a
//! certificate gap >= 1, and fault-free lanes are byte-identical to a
//! no-faults run.
//!
//! Fault state is process-global (`mshc::schedule::faults`), so every
//! test here serializes on one lock; the suite lives in its own test
//! binary, so other integration suites are unaffected.

use mshc::prelude::*;
use mshc::schedule::faults;
use mshc::schedule::FAULT_PANIC_PREFIX;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_instance(seed: u64) -> HcInstance {
    WorkloadSpec { tasks: 12, machines: 3, ccr: 0.5, seed, ..WorkloadSpec::small(seed) }.generate()
}

fn run_se(seed: u64, inst: &HcInstance) -> RunResult {
    use mshc::core::SePendingBias;
    let mut s =
        SePendingBias::new(SeConfig { seed, selection_bias: f64::NAN, ..SeConfig::default() });
    s.run(inst, &RunBudget::iterations(20), None)
}

#[test]
fn poisoned_evaluation_panics_are_contained_and_workers_survive() {
    let _guard = lock();
    let inst = tiny_instance(7);
    let clean = run_se(7, &inst);
    // Poison an evaluation the run definitely reaches.
    faults::arm(&FaultPlan { panic_at_evaluations: Some(40), ..FaultPlan::default() });
    let blast = catch_unwind(AssertUnwindSafe(|| run_se(7, &inst)));
    faults::disarm();
    let payload = blast.expect_err("evaluation 40 is poisoned");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains(FAULT_PANIC_PREFIX), "injected cause surfaces: {msg}");
    // The resident evaluation pool survived the worker panic: the same
    // run, disarmed, reproduces the clean result bit for bit.
    let after = run_se(7, &inst);
    assert_eq!(after.makespan.to_bits(), clean.makespan.to_bits());
    assert_eq!(after.evaluations, clean.evaluations);
    after.solution.check(inst.graph()).unwrap();
    assert!(after.gap.is_none_or(|g| g >= 1.0));
}

#[test]
fn fault_free_tournament_cells_byte_match_a_no_faults_run() {
    let _guard = lock();
    let scenario = mshc::workloads::tiny_suite()[0];
    let spec = TournamentSpec {
        algorithms: vec!["se".into(), "sa".into(), "heft".into()],
        seeds: vec![31],
        iterations: 8,
        ..TournamentSpec::new("chaos", vec![scenario])
    };
    let clean = mshc::portfolio::run_tournament(&spec).unwrap();

    faults::arm(&FaultPlan {
        cell_panics: vec![CellFault { algorithm: "sa".into(), scenario: scenario.tag(), seed: 31 }],
        ..FaultPlan::default()
    });
    let faulted = mshc::portfolio::run_tournament(&spec).unwrap();
    faults::disarm();

    assert_eq!(clean.cells.len(), faulted.cells.len());
    for (c, f) in clean.cells.iter().zip(&faulted.cells) {
        assert!(f.ok, "{}: the bounded retry absorbs the injected panic", f.algorithm);
        if f.algorithm == "sa" {
            assert!(f.degraded && f.retries == 1);
        } else {
            // Fault-free lanes: byte-identical to the clean run,
            // including the serialized form.
            assert_eq!(
                serde_json::to_string(c).unwrap(),
                serde_json::to_string(f).unwrap(),
                "{}: fault-free lane drifted",
                f.algorithm
            );
        }
        // Retries aside, every surviving payload is the clean payload.
        assert_eq!(c.objective_value.to_bits(), f.objective_value.to_bits());
        assert_eq!(c.evaluations, f.evaluations);
        assert!(f.gap.is_none_or(|g| g >= 1.0));
    }
}

#[test]
fn replan_reports_are_thread_count_invariant() {
    let _guard = lock();
    // The end-to-end disturbed run — baseline search, dropout replan,
    // slowdown replan — serialized at 1 and at 8 evaluation threads.
    // The report carries virtual time only, so the bytes must match.
    let disturbed_report = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        pool.install(|| {
            let inst = tiny_instance(13);
            let mut search = SimulatedAnnealing::new(SaConfig { seed: 13, ..SaConfig::default() });
            let budget = RunBudget::iterations(40);
            let baseline = search.run(&inst, &budget, None);
            let spec = DisturbanceTraceSpec::balanced(3, baseline.makespan, 3);
            let trace = DisturbanceTrace::generate(&spec, 77);
            let mut replanner = Replanner::new(&inst, baseline.solution);
            for d in &trace.events {
                replanner.apply(d, &mut search, &budget).unwrap();
            }
            replanner.report().to_json()
        })
    };
    let at_one = disturbed_report(1);
    let at_eight = disturbed_report(8);
    assert_eq!(at_one, at_eight, "replan report must not depend on thread count");
    let report = ReplanReport::from_json(&at_one).unwrap();
    assert!(report.gap.is_none_or(|g| g >= 1.0));
    assert!(report.final_makespan > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary poison points against arbitrary seeds: the run either
    /// completes untouched (the poison lands past its evaluation count)
    /// or panics with the injected cause — and a disarmed re-run is
    /// always byte-identical to a never-armed run. No hang, no panic
    /// escaping the harness, no state leaking across arm/disarm.
    #[test]
    fn poison_points_never_corrupt_survivors(
        panic_at in 1u64..2000,
        seed in 0u64..300,
    ) {
        let _guard = lock();
        let inst = tiny_instance(seed);
        let clean = run_se(seed, &inst);
        faults::arm(&FaultPlan {
            panic_at_evaluations: Some(panic_at),
            ..FaultPlan::default()
        });
        let blast = catch_unwind(AssertUnwindSafe(|| run_se(seed, &inst)));
        faults::disarm();
        match blast {
            Ok(survivor) => {
                // The poison never fired; the armed run IS the clean run.
                survivor.solution.check(inst.graph()).expect("survivor is valid");
                prop_assert_eq!(survivor.makespan.to_bits(), clean.makespan.to_bits());
                prop_assert_eq!(survivor.evaluations, clean.evaluations);
                if let Some(gap) = survivor.gap {
                    prop_assert!(gap >= 1.0);
                }
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_default();
                prop_assert!(
                    msg.contains(FAULT_PANIC_PREFIX),
                    "only injected panics may escape: {}", msg
                );
            }
        }
        // Disarming restores determinism exactly.
        let after = run_se(seed, &inst);
        prop_assert_eq!(after.makespan.to_bits(), clean.makespan.to_bits());
        prop_assert_eq!(after.evaluations, clean.evaluations);
    }
}
