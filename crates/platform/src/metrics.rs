//! Workload-characterization metrics (§5 of the paper).
//!
//! The paper classifies workloads by three axes:
//!
//! * **connectivity** — "the number of data items to be transferred
//!   between the subtasks"; measured structurally by
//!   [`mshc_taskgraph::GraphMetrics`], summarized here as data items per
//!   task;
//! * **heterogeneity** — "the difference in execution times of subtasks on
//!   the different machines"; we measure the mean per-task coefficient of
//!   variation of the columns of `E` (0 = homogeneous, larger = more
//!   heterogeneous);
//! * **CCR** — "the ratio of size of data item over execution time of the
//!   subtask generating this item"; we measure the mean over data items of
//!   `mean transfer time of d / mean execution time of the producer of d`.
//!   CCR ≈ 0.1 means computation-dominated, CCR ≈ 1 heavy communication.

use crate::instance::HcInstance;
use serde::{Deserialize, Serialize};

/// Measured characterization of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceMetrics {
    /// Tasks `k`.
    pub tasks: usize,
    /// Machines `l`.
    pub machines: usize,
    /// Data items `p`.
    pub data_items: usize,
    /// Data items per task (`p / k`) — connectivity summary.
    pub connectivity: f64,
    /// Mean per-task coefficient of variation of execution times.
    pub heterogeneity: f64,
    /// Mean communication-to-computation ratio.
    pub ccr: f64,
}

impl InstanceMetrics {
    /// Measures all axes on an instance.
    pub fn compute(inst: &HcInstance) -> InstanceMetrics {
        let g = inst.graph();
        let s = inst.system();
        let k = g.task_count();
        let l = s.machine_count();
        let p = g.data_count();

        // Heterogeneity: mean over tasks of std/mean of the E column.
        let mut cv_sum = 0.0;
        for t in g.tasks() {
            let mean = s.mean_exec_time(t);
            let var =
                s.exec_matrix().col_iter(t.index()).map(|v| (v - mean) * (v - mean)).sum::<f64>()
                    / l as f64;
            cv_sum += var.sqrt() / mean;
        }
        let heterogeneity = cv_sum / k as f64;

        // CCR: mean over data items of mean-transfer / producer's mean exec.
        let ccr = if p == 0 {
            0.0
        } else {
            g.edges()
                .iter()
                .map(|e| s.mean_transfer_time(e.id) / s.mean_exec_time(e.src))
                .sum::<f64>()
                / p as f64
        };

        InstanceMetrics {
            tasks: k,
            machines: l,
            data_items: p,
            connectivity: p as f64 / k as f64,
            heterogeneity,
            ccr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::system::HcSystem;
    use mshc_taskgraph::TaskGraphBuilder;

    fn instance(exec: Matrix, transfer: Matrix) -> HcInstance {
        let mut b = TaskGraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        let g = b.build().unwrap();
        let l = exec.rows();
        let sys = HcSystem::with_anonymous_machines(l, exec, transfer).unwrap();
        HcInstance::new(g, sys).unwrap()
    }

    #[test]
    fn homogeneous_system_has_zero_heterogeneity() {
        let inst = instance(Matrix::filled(3, 3, 10.0), Matrix::filled(3, 2, 1.0));
        let m = InstanceMetrics::compute(&inst);
        assert_eq!(m.heterogeneity, 0.0);
        assert_eq!(m.tasks, 3);
        assert_eq!(m.machines, 3);
        assert_eq!(m.data_items, 2);
        assert!((m.connectivity - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn heterogeneity_grows_with_spread() {
        let narrow =
            instance(Matrix::from_rows(&[vec![10.0; 3], vec![12.0; 3]]), Matrix::filled(1, 2, 1.0));
        let wide =
            instance(Matrix::from_rows(&[vec![1.0; 3], vec![100.0; 3]]), Matrix::filled(1, 2, 1.0));
        let hn = InstanceMetrics::compute(&narrow).heterogeneity;
        let hw = InstanceMetrics::compute(&wide).heterogeneity;
        assert!(hw > 5.0 * hn, "wide spread must read as far more heterogeneous");
    }

    #[test]
    fn ccr_matches_construction() {
        // exec 10 everywhere, transfers 10 everywhere => CCR = 1.
        let inst = instance(Matrix::filled(2, 3, 10.0), Matrix::filled(1, 2, 10.0));
        let m = InstanceMetrics::compute(&inst);
        assert!((m.ccr - 1.0).abs() < 1e-12);
        // transfers 1 => CCR = 0.1.
        let inst = instance(Matrix::filled(2, 3, 10.0), Matrix::filled(1, 2, 1.0));
        let m = InstanceMetrics::compute(&inst);
        assert!((m.ccr - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ccr_zero_without_data_items() {
        let g = TaskGraphBuilder::new(2).build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::filled(2, 2, 5.0),
            Matrix::filled(1, 0, 0.0),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        assert_eq!(InstanceMetrics::compute(&inst).ccr, 0.0);
    }
}
