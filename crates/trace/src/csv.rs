//! Minimal CSV writing (hand-rolled — the values are all numeric or simple
//! identifiers, so no quoting/escaping machinery is needed; fields
//! containing commas/quotes/newlines are rejected loudly instead).

use crate::series::Series;
use std::io::{self, Write};
use std::path::Path;

/// A rectangular table headed by column names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CsvTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> CsvTable {
        CsvTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header or a field contains a
    /// CSV metacharacter.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        for f in &row {
            assert!(
                !f.contains(',') && !f.contains('"') && !f.contains('\n'),
                "CSV field needs quoting, which this writer deliberately does not do: {f:?}"
            );
        }
        self.rows.push(row);
    }

    /// Appends a row of floats formatted with full precision.
    pub fn push_floats(&mut self, row: impl IntoIterator<Item = f64>) {
        self.push_row(row.into_iter().map(|v| format!("{v}")));
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes to CSV text.
    pub fn to_string_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes to any sink.
    pub fn write_to(&self, mut w: impl Write) -> io::Result<()> {
        w.write_all(self.to_string_csv().as_bytes())
    }

    /// Writes to a file path, creating parent directories.
    pub fn write_file(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        self.write_to(std::fs::File::create(path)?)
    }
}

/// Writes several series sharing an x axis as one CSV: columns
/// `x, <name1>, <name2>, ...`. Series are sampled at the union of x
/// values; missing y values are left empty.
pub fn write_csv(x_label: &str, series: &[Series]) -> CsvTable {
    let mut xs: Vec<f64> = series.iter().flat_map(|s| s.points().iter().map(|p| p.0)).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    let mut headers = vec![x_label.to_string()];
    headers.extend(series.iter().map(|s| s.name().to_string()));
    let mut table = CsvTable::new(headers);
    for &x in &xs {
        let mut row = vec![format!("{x}")];
        for s in series {
            match s.points().iter().find(|p| p.0 == x) {
                Some(&(_, y)) => row.push(format!("{y}")),
                None => row.push(String::new()),
            }
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = CsvTable::new(["iter", "cost"]);
        t.push_row(["0", "10.5"]);
        t.push_floats([1.0, 9.25]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.to_string_csv(), "iter,cost\n0,10.5\n1,9.25\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = CsvTable::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    #[should_panic(expected = "quoting")]
    fn metacharacters_rejected() {
        let mut t = CsvTable::new(["a"]);
        t.push_row(["has,comma"]);
    }

    #[test]
    fn multi_series_union() {
        let a = Series::from_points("se", vec![(0.0, 5.0), (2.0, 3.0)]);
        let b = Series::from_points("ga", vec![(0.0, 6.0), (1.0, 4.0)]);
        let t = write_csv("t", &[a, b]);
        let s = t.to_string_csv();
        assert_eq!(s, "t,se,ga\n0,5,6\n1,,4\n2,3,\n");
    }

    #[test]
    fn write_file_creates_dirs() {
        let dir = std::env::temp_dir().join("mshc_trace_test").join("nested");
        let path = dir.join("out.csv");
        let _ = std::fs::remove_file(&path);
        let mut t = CsvTable::new(["x"]);
        t.push_row(["1"]);
        t.write_file(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "x\n1\n");
        std::fs::remove_dir_all(std::env::temp_dir().join("mshc_trace_test")).unwrap();
    }
}
