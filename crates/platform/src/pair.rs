//! Canonical indexing of unordered machine pairs.
//!
//! The paper's `Tr` matrix has `l(l-1)/2` rows, one per unordered pair of
//! distinct machines. We index pairs `(a, b)` with `a < b` in the standard
//! upper-triangular order:
//!
//! ```text
//! (0,1) (0,2) ... (0,l-1) (1,2) ... (1,l-1) ... (l-2,l-1)
//! ```

use crate::machine::MachineId;

/// Number of unordered machine pairs for `l` machines: `l(l-1)/2`.
#[inline]
pub const fn pair_count(machines: usize) -> usize {
    machines * machines.saturating_sub(1) / 2
}

/// Row index of the unordered pair `{a, b}` in `Tr`.
///
/// # Panics
/// Panics if `a == b` (co-located transfers have no `Tr` row — they cost
/// zero by the model) or if either id is out of range.
#[inline]
pub fn pair_index(machines: usize, a: MachineId, b: MachineId) -> usize {
    let (lo, hi) = if a.raw() < b.raw() { (a.index(), b.index()) } else { (b.index(), a.index()) };
    assert!(lo != hi, "no Tr row for a machine with itself");
    assert!(hi < machines, "machine id out of range");
    // Rows before block `lo`: sum_{i<lo} (machines-1-i) = lo*machines - lo - lo(lo-1)/2
    lo * (machines - 1) - lo * (lo.saturating_sub(1)) / 2 + (hi - lo - 1)
}

/// Inverse of [`pair_index`]: the pair `{a, b}` (with `a < b`) stored at
/// `row`. O(l) scan; used only by debugging/reporting paths.
pub fn pair_from_index(machines: usize, row: usize) -> (MachineId, MachineId) {
    let mut remaining = row;
    for lo in 0..machines {
        let block = machines - 1 - lo;
        if remaining < block {
            return (MachineId::from_usize(lo), MachineId::from_usize(lo + 1 + remaining));
        }
        remaining -= block;
    }
    panic!("pair row {row} out of range for {machines} machines");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(pair_count(0), 0);
        assert_eq!(pair_count(1), 0);
        assert_eq!(pair_count(2), 1);
        assert_eq!(pair_count(5), 10);
        assert_eq!(pair_count(20), 190);
    }

    #[test]
    fn index_is_bijective_and_symmetric() {
        for l in [2usize, 3, 5, 8, 20] {
            let mut seen = vec![false; pair_count(l)];
            for a in 0..l {
                for b in (a + 1)..l {
                    let i = pair_index(l, MachineId::from_usize(a), MachineId::from_usize(b));
                    let j = pair_index(l, MachineId::from_usize(b), MachineId::from_usize(a));
                    assert_eq!(i, j, "symmetry");
                    assert!(!seen[i], "collision at {i} for ({a},{b}) l={l}");
                    seen[i] = true;
                    assert_eq!(
                        pair_from_index(l, i),
                        (MachineId::from_usize(a), MachineId::from_usize(b)),
                        "inverse"
                    );
                }
            }
            assert!(seen.iter().all(|&s| s), "indexing covers all rows for l={l}");
        }
    }

    #[test]
    fn first_and_last_rows() {
        assert_eq!(pair_index(4, MachineId::new(0), MachineId::new(1)), 0);
        assert_eq!(pair_index(4, MachineId::new(2), MachineId::new(3)), 5);
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn same_machine_panics() {
        let _ = pair_index(4, MachineId::new(1), MachineId::new(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = pair_index(4, MachineId::new(0), MachineId::new(4));
    }
}
