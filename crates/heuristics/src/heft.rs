//! HEFT and CPOP (Topcuoglu, Hariri & Wu — the paper's reference \[5\]).

use crate::builder::ListScheduleBuilder;
use mshc_platform::{HcInstance, MachineId};
use mshc_schedule::{report_objective_value, RunBudget, RunResult, Scheduler, Termination};
use mshc_taskgraph::{TaskId, TopoOrder};
use mshc_trace::Trace;
use std::time::Instant;

/// Upward rank of every task: `rank_u(t) = w̄(t) + max over succ s of
/// (c̄(t,s) + rank_u(s))`, with mean execution times as task weights and
/// mean transfer times as edge weights.
pub fn upward_ranks(inst: &HcInstance) -> Vec<f64> {
    let g = inst.graph();
    let sys = inst.system();
    let order = TopoOrder::kahn(g);
    let mut rank = vec![0.0f64; g.task_count()];
    for &t in order.as_slice().iter().rev() {
        let mut tail = 0.0f64;
        for e in g.out_edges(t) {
            tail = tail.max(sys.mean_transfer_time(e.id) + rank[e.dst.index()]);
        }
        rank[t.index()] = sys.mean_exec_time(t) + tail;
    }
    rank
}

/// Downward rank: `rank_d(t) = max over pred p of (rank_d(p) + w̄(p) +
/// c̄(p,t))`; used by CPOP (`rank_u + rank_d` is constant along a
/// critical path).
pub fn downward_ranks(inst: &HcInstance) -> Vec<f64> {
    let g = inst.graph();
    let sys = inst.system();
    let order = TopoOrder::kahn(g);
    let mut rank = vec![0.0f64; g.task_count()];
    for &t in order.as_slice() {
        let mut best = 0.0f64;
        for e in g.in_edges(t) {
            best = best.max(
                rank[e.src.index()] + sys.mean_exec_time(e.src) + sys.mean_transfer_time(e.id),
            );
        }
        rank[t.index()] = best;
    }
    rank
}

/// *Heterogeneous Earliest Finish Time*: schedule tasks by decreasing
/// upward rank, each on the machine minimizing its earliest finish time.
///
/// Two placement policies:
///
/// * **append** (default) — a task goes to the end of the chosen
///   machine's current order. Matches the shared evaluation model
///   bit-for-bit (see the crate docs).
/// * **insertion** ([`HeftScheduler::with_insertion`]) — the original
///   Topcuoglu et al. policy: a task may claim an idle gap between two
///   already-placed tasks if it fits. The resulting per-machine orders
///   are exported as a solution string by sorting tasks on start time
///   (strictly positive execution times make that a linear extension),
///   and the reported makespan is the shared evaluator's, which can only
///   be ≤ the internal insertion times.
#[derive(Debug, Clone, Default)]
pub struct HeftScheduler {
    insertion: bool,
}

impl HeftScheduler {
    /// Creates the append-policy scheduler.
    pub fn new() -> HeftScheduler {
        HeftScheduler { insertion: false }
    }

    /// Creates the insertion-policy scheduler (classic HEFT).
    pub fn with_insertion() -> HeftScheduler {
        HeftScheduler { insertion: true }
    }

    /// Tasks in scheduling priority order (decreasing upward rank, ties
    /// by id) — a linear extension because `rank_u` strictly decreases
    /// along every edge.
    fn priority_order(inst: &HcInstance) -> Vec<TaskId> {
        let ranks = upward_ranks(inst);
        let mut order: Vec<TaskId> = inst.graph().tasks().collect();
        order.sort_by(|&a, &b| {
            ranks[b.index()].total_cmp(&ranks[a.index()]).then(a.raw().cmp(&b.raw()))
        });
        order
    }

    fn run_append(&self, inst: &HcInstance) -> (mshc_schedule::Solution, f64, u64) {
        let mut b = ListScheduleBuilder::new(inst);
        let mut evaluations = 0u64;
        for t in Self::priority_order(inst) {
            let (m, _) = b.best_eft(t);
            evaluations += inst.machine_count() as u64;
            b.schedule(t, m);
        }
        let makespan = b.makespan();
        (b.into_solution(), makespan, evaluations)
    }

    fn run_insertion(&self, inst: &HcInstance) -> (mshc_schedule::Solution, f64, u64) {
        let g = inst.graph();
        let sys = inst.system();
        let k = g.task_count();
        // Per machine: placed (start, finish, task), kept sorted by start.
        let mut lanes: Vec<Vec<(f64, f64, TaskId)>> = vec![Vec::new(); inst.machine_count()];
        let mut finish = vec![0.0f64; k];
        let mut assignment = vec![MachineId::new(0); k];
        let mut evaluations = 0u64;
        for t in Self::priority_order(inst) {
            let mut best: Option<(f64, f64, MachineId)> = None; // (finish, start, machine)
            for m in sys.machine_ids() {
                evaluations += 1;
                // Latest data arrival on m.
                let mut ready = 0.0f64;
                for e in g.in_edges(t) {
                    let arr = finish[e.src.index()]
                        + sys.transfer_time(e.id, assignment[e.src.index()], m);
                    ready = ready.max(arr);
                }
                let exec = sys.exec_time(m, t);
                // Earliest slot of length `exec` at or after `ready`:
                // consider the gap before each placed task and the tail.
                let lane = &lanes[m.index()];
                let mut est = ready;
                let mut placed = false;
                let mut prev_end = 0.0f64;
                for &(s, f, _) in lane {
                    let gap_start = prev_end.max(ready);
                    if gap_start + exec <= s {
                        est = gap_start;
                        placed = true;
                        break;
                    }
                    prev_end = f;
                }
                if !placed {
                    est = prev_end.max(ready);
                }
                let eft = est + exec;
                let better = match best {
                    None => true,
                    Some((bf, _, bm)) => eft < bf - 1e-12 || ((eft - bf).abs() <= 1e-12 && m < bm),
                };
                if better {
                    best = Some((eft, est, m));
                }
            }
            let (eft, est, m) = best.expect("at least one machine");
            finish[t.index()] = eft;
            assignment[t.index()] = m;
            let lane = &mut lanes[m.index()];
            let pos = lane.partition_point(|&(s, _, _)| s < est);
            lane.insert(pos, (est, eft, t));
        }
        // Export: global order by (start, id) — a linear extension because
        // every predecessor *finishes* before its successor starts and
        // execution times are strictly positive.
        let mut order: Vec<TaskId> = g.tasks().collect();
        let start_of = |t: TaskId| finish[t.index()] - sys.exec_time(assignment[t.index()], t);
        order.sort_by(|&a, &b| start_of(a).total_cmp(&start_of(b)).then(a.raw().cmp(&b.raw())));
        let solution =
            mshc_schedule::Solution::from_order(g, inst.machine_count(), &order, &assignment)
                .expect("start-time order is a linear extension");
        let makespan = mshc_schedule::Evaluator::new(inst).makespan(&solution);
        evaluations += 1;
        debug_assert!(
            makespan <= finish.iter().copied().fold(0.0, f64::max) + 1e-9,
            "shared evaluation can only tighten insertion times"
        );
        (solution, makespan, evaluations)
    }
}

impl Scheduler for HeftScheduler {
    fn name(&self) -> &str {
        if self.insertion {
            "heft-ins"
        } else {
            "heft"
        }
    }

    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        _trace: Option<&mut Trace>,
    ) -> RunResult {
        let start = Instant::now();
        let (solution, makespan, evaluations) =
            if self.insertion { self.run_insertion(inst) } else { self.run_append(inst) };
        let objective_value = report_objective_value(inst, &solution, makespan, budget.objective);
        mshc_obs::add(mshc_obs::Counter::Iterations, 1); // one constructive pass
        RunResult {
            solution,
            makespan,
            objective_value,
            iterations: 1,
            evaluations,
            elapsed: start.elapsed(),
            scan: Default::default(),
            lower_bound: None,
            gap: None,
            early_stopped: false,
            termination: Termination::Completed,
        }
        .with_certificate(inst, budget.objective)
    }
}

/// *Critical Path on a Processor*: tasks on the (mean-cost) critical path
/// are pinned to the single machine minimizing the path's total execution
/// time; the rest are scheduled by priority (`rank_u + rank_d`) with EFT.
#[derive(Debug, Clone, Default)]
pub struct CpopScheduler;

impl CpopScheduler {
    /// Creates the scheduler.
    pub fn new() -> CpopScheduler {
        CpopScheduler
    }
}

impl Scheduler for CpopScheduler {
    fn name(&self) -> &str {
        "cpop"
    }

    fn run(
        &mut self,
        inst: &HcInstance,
        budget: &RunBudget,
        _trace: Option<&mut Trace>,
    ) -> RunResult {
        let start = Instant::now();
        let g = inst.graph();
        let sys = inst.system();
        let up = upward_ranks(inst);
        let down = downward_ranks(inst);
        let k = g.task_count();
        let priority: Vec<f64> = (0..k).map(|i| up[i] + down[i]).collect();
        // Critical path: tasks whose priority equals the maximum entry
        // priority (within epsilon).
        let cp_len = g.entry_tasks().iter().map(|t| priority[t.index()]).fold(0.0f64, f64::max);
        let on_cp: Vec<bool> =
            (0..k).map(|i| (priority[i] - cp_len).abs() < 1e-9 * cp_len.max(1.0)).collect();
        // Pin CP tasks to the machine minimizing their total execution.
        let cp_machine: MachineId = sys
            .machine_ids()
            .min_by(|&a, &b| {
                let ca: f64 = (0..k)
                    .filter(|&i| on_cp[i])
                    .map(|i| sys.exec_time(a, TaskId::from_usize(i)))
                    .sum();
                let cb: f64 = (0..k)
                    .filter(|&i| on_cp[i])
                    .map(|i| sys.exec_time(b, TaskId::from_usize(i)))
                    .sum();
                ca.total_cmp(&cb).then(a.cmp(&b))
            })
            .expect("machines");

        let mut builder = ListScheduleBuilder::new(inst);
        let mut evaluations = 0u64;
        while !builder.is_complete() {
            // Highest-priority ready task.
            let t = builder
                .ready_tasks()
                .into_iter()
                .max_by(|&a, &b| {
                    priority[a.index()].total_cmp(&priority[b.index()]).then(b.raw().cmp(&a.raw()))
                })
                .expect("ready set non-empty");
            let m = if on_cp[t.index()] {
                cp_machine
            } else {
                evaluations += inst.machine_count() as u64;
                builder.best_eft(t).0
            };
            builder.schedule(t, m);
        }
        let makespan = builder.makespan();
        let solution = builder.into_solution();
        let objective_value = report_objective_value(inst, &solution, makespan, budget.objective);
        mshc_obs::add(mshc_obs::Counter::Iterations, 1); // one constructive pass
        RunResult {
            solution,
            makespan,
            objective_value,
            iterations: 1,
            evaluations: evaluations.max(1),
            elapsed: start.elapsed(),
            scan: Default::default(),
            lower_bound: None,
            gap: None,
            early_stopped: false,
            termination: Termination::Completed,
        }
        .with_certificate(inst, budget.objective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_schedule::{replay, Evaluator};
    use mshc_taskgraph::TaskGraphBuilder;

    fn instance() -> HcInstance {
        let mut b = TaskGraphBuilder::new(6);
        for (s, d) in [(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5)] {
            b.add_edge(s, d).unwrap();
        }
        let g = b.build().unwrap();
        let exec = Matrix::from_rows(&[
            vec![6.0, 3.0, 9.0, 4.0, 8.0, 5.0],
            vec![4.0, 7.0, 2.0, 6.0, 3.0, 7.0],
            vec![8.0, 5.0, 5.0, 3.0, 6.0, 4.0],
        ]);
        let transfer = Matrix::from_fn(3, 6, |r, c| 1.0 + (r + c) as f64 % 3.0);
        let sys = HcSystem::with_anonymous_machines(3, exec, transfer).unwrap();
        HcInstance::new(g, sys).unwrap()
    }

    #[test]
    fn upward_ranks_decrease_along_edges() {
        let inst = instance();
        let r = upward_ranks(&inst);
        for e in inst.graph().edges() {
            assert!(
                r[e.src.index()] > r[e.dst.index()],
                "rank({}) must exceed rank({})",
                e.src,
                e.dst
            );
        }
    }

    #[test]
    fn downward_ranks_increase_along_edges() {
        let inst = instance();
        let r = downward_ranks(&inst);
        for e in inst.graph().edges() {
            assert!(r[e.src.index()] < r[e.dst.index()]);
        }
        for t in inst.graph().entry_tasks() {
            assert_eq!(r[t.index()], 0.0);
        }
    }

    #[test]
    fn heft_valid_and_consistent() {
        let inst = instance();
        let r = HeftScheduler::new().run(&inst, &RunBudget::default(), None);
        r.solution.check(inst.graph()).unwrap();
        let mk = Evaluator::new(&inst).makespan(&r.solution);
        assert!((mk - r.makespan).abs() < 1e-9);
        let sim = replay(&inst, &r.solution).unwrap();
        assert!((sim.makespan - r.makespan).abs() < 1e-9);
    }

    #[test]
    fn cpop_valid_and_consistent() {
        let inst = instance();
        let r = CpopScheduler::new().run(&inst, &RunBudget::default(), None);
        r.solution.check(inst.graph()).unwrap();
        let mk = Evaluator::new(&inst).makespan(&r.solution);
        assert!((mk - r.makespan).abs() < 1e-9);
    }

    #[test]
    fn cpop_pins_critical_path_to_one_machine() {
        let inst = instance();
        let up = upward_ranks(&inst);
        let down = downward_ranks(&inst);
        let prio: Vec<f64> = (0..6).map(|i| up[i] + down[i]).collect();
        let cp_len = prio.iter().copied().fold(0.0, f64::max);
        let r = CpopScheduler::new().run(&inst, &RunBudget::default(), None);
        let cp_tasks: Vec<TaskId> = inst
            .graph()
            .tasks()
            .filter(|t| (prio[t.index()] - cp_len).abs() < 1e-9 * cp_len)
            .collect();
        assert!(cp_tasks.len() >= 2, "a chain graph has a multi-task CP");
        let m0 = r.solution.machine_of(cp_tasks[0]);
        for &t in &cp_tasks {
            assert_eq!(r.solution.machine_of(t), m0, "CP task {t} off the pinned machine");
        }
    }

    #[test]
    fn insertion_heft_valid_and_no_worse_than_append() {
        let inst = instance();
        let append = HeftScheduler::new().run(&inst, &RunBudget::default(), None);
        let ins = HeftScheduler::with_insertion().run(&inst, &RunBudget::default(), None);
        ins.solution.check(inst.graph()).unwrap();
        let mk = Evaluator::new(&inst).makespan(&ins.solution);
        assert!((mk - ins.makespan).abs() < 1e-9);
        let sim = replay(&inst, &ins.solution).unwrap();
        assert!((sim.makespan - ins.makespan).abs() < 1e-9);
        // Insertion has strictly more placement freedom; on any single
        // instance it is not guaranteed better, but must stay sane.
        assert!(ins.makespan <= append.makespan * 1.5);
        assert_eq!(HeftScheduler::with_insertion().name(), "heft-ins");
    }

    #[test]
    fn insertion_heft_uses_gaps() {
        // Machine m0 is fast for everything; the wide fork forces long
        // idle gaps that insertion should exploit. Build: source -> a, b;
        // a is long, b is short; c depends on b only. Append schedules in
        // rank order; insertion may slot c into m0's gap.
        use mshc_taskgraph::TaskGraphBuilder;
        let mut bld = TaskGraphBuilder::new(4);
        bld.add_edge(0, 1).unwrap(); // src -> long
        bld.add_edge(0, 2).unwrap(); // src -> short
        bld.add_edge(2, 3).unwrap(); // short -> dependent
        let g = bld.build().unwrap();
        let exec = Matrix::from_rows(&[vec![1.0, 50.0, 1.0, 1.0], vec![2.0, 60.0, 2.0, 2.0]]);
        let transfer = Matrix::from_rows(&[vec![100.0, 100.0, 100.0]]);
        let sys = HcSystem::with_anonymous_machines(2, exec, transfer).unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let r = HeftScheduler::with_insertion().run(&inst, &RunBudget::default(), None);
        r.solution.check(inst.graph()).unwrap();
        // Everything lands on m0 (comm is prohibitive), and the short
        // chain must not wait for the 50-unit task: makespan stays 53
        // (1 + 50 + serialized 1+1 inside the window).
        assert!(r.makespan <= 53.0 + 1e-9, "got {}", r.makespan);
    }

    #[test]
    fn heft_beats_worst_single_machine() {
        let inst = instance();
        let r = HeftScheduler::new().run(&inst, &RunBudget::default(), None);
        let worst_serial: f64 = inst
            .system()
            .machine_ids()
            .map(|m| inst.graph().tasks().map(|t| inst.system().exec_time(m, t)).sum::<f64>())
            .fold(0.0, f64::max);
        assert!(r.makespan < worst_serial);
    }

    #[test]
    fn names() {
        assert_eq!(HeftScheduler::new().name(), "heft");
        assert_eq!(CpopScheduler::new().name(), "cpop");
    }
}
