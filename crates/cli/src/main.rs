//! `mshc` — command-line front end for the simulated-evolution MSHC suite.
//!
//! ```text
//! mshc generate --tasks 100 --machines 20 --connectivity high --out wl.json
//! mshc run --algo se --instance wl.json --iters 500 --gantt
//! mshc run --algo heft --tasks 50 --machines 8
//! mshc compare --tasks 100 --machines 20 --ccr 1.0 --wall 5
//! mshc info --instance wl.json
//! ```

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    }
}
