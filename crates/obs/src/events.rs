//! The JSONL event/span sink and the [`Span`] timing guard.
//!
//! Events are newline-delimited JSON objects written to an installed
//! sink (`--obs-events <out.jsonl>` in the CLI). Emission is guarded by
//! a relaxed atomic fast path: with no sink installed, [`emit_event`]
//! is a load and a branch, and [`span`] starts no clock unless either
//! the registry or the sink wants the measurement. The sink itself
//! lives behind a mutex — event emission happens at coarse boundaries
//! (cell finished, race migrated, run ended), never inside evaluator
//! hot loops, so the lock is uncontended in practice and can never sit
//! on a result-bearing code path.

use crate::registry::{enabled, observe, Hist};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;

/// Fast-path flag: true iff a sink is installed (and not `noop`).
static EVENTS_ON: AtomicBool = AtomicBool::new(false);

/// The installed sink, if any.
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

fn sink_lock() -> std::sync::MutexGuard<'static, Option<Box<dyn Write + Send>>> {
    // A panic while holding the sink lock (a failed write partway
    // through a line) must not wedge every later emitter.
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether an event sink is installed and accepting events.
#[inline]
pub fn events_enabled() -> bool {
    !cfg!(feature = "noop") && EVENTS_ON.load(Relaxed)
}

/// Installs an arbitrary writer as the JSONL event sink, replacing any
/// previous sink (which is flushed and dropped). Under the `noop`
/// feature the writer is dropped and events stay off.
pub fn install_events_writer(writer: Box<dyn Write + Send>) {
    if cfg!(feature = "noop") {
        return;
    }
    let mut sink = sink_lock();
    if let Some(mut old) = sink.take() {
        let _ = old.flush();
    }
    *sink = Some(writer);
    EVENTS_ON.store(true, Relaxed);
}

/// Creates (truncating) `path` and installs it as the JSONL event sink.
pub fn install_events_file(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    install_events_writer(Box::new(BufWriter::new(file)));
    Ok(())
}

/// Flushes and removes the installed sink, turning events off.
pub fn shutdown_events() {
    EVENTS_ON.store(false, Relaxed);
    if let Some(mut old) = sink_lock().take() {
        let _ = old.flush();
    }
}

/// A field value in an emitted event.
#[derive(Debug, Clone, Copy)]
pub enum EventValue<'a> {
    /// An unsigned integer field.
    U64(u64),
    /// A float field (written with enough precision to round-trip).
    F64(f64),
    /// A string field (JSON-escaped on the way out).
    Str(&'a str),
    /// A boolean field.
    Bool(bool),
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Emits one JSONL event line `{"event":<name>, <fields...>}` to the
/// installed sink. A load-and-branch no-op when no sink is installed.
/// Write failures are swallowed (telemetry must never fail the run).
pub fn emit_event(event: &str, fields: &[(&str, EventValue<'_>)]) {
    if !events_enabled() {
        return;
    }
    let mut line = String::with_capacity(64 + fields.len() * 24);
    line.push_str("{\"event\":");
    push_json_str(&mut line, event);
    for (key, value) in fields {
        line.push(',');
        push_json_str(&mut line, key);
        line.push(':');
        match value {
            EventValue::U64(v) => {
                let _ = write!(line, "{v}");
            }
            EventValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(line, "{v:?}");
                } else {
                    line.push_str("null");
                }
            }
            EventValue::Str(s) => push_json_str(&mut line, s),
            EventValue::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line.push_str("}\n");
    let mut sink = sink_lock();
    if let Some(w) = sink.as_mut() {
        let _ = w.write_all(line.as_bytes());
    }
}

/// A scoped duration measurement. While armed (registry enabled or a
/// sink installed at creation), the drop records the elapsed
/// microseconds into [`Hist::SpanUs`] and emits a `span` event; while
/// disarmed it holds no clock and drops for free.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Ends the span without recording anything (e.g. on an error path
    /// that should not pollute duration histograms).
    pub fn cancel(mut self) {
        self.start = None;
    }
}

/// Opens a named [`Span`]. Reads one clock at creation and one at drop
/// when armed; entirely free when both the registry and the sink are
/// off.
pub fn span(name: &'static str) -> Span {
    let armed = enabled() || events_enabled();
    Span { name, start: armed.then(Instant::now) }
}

/// Records `micros` into a duration histogram and, when a sink is
/// installed, emits a `span` event carrying the measurement. This is
/// the manual-clock sibling of [`span`] for call sites that already
/// time themselves (e.g. tournament cells).
pub fn record_duration(hist: Hist, name: &str, micros: u64) {
    observe(hist, micros);
    emit_event("span", &[("name", EventValue::Str(name)), ("dur_us", EventValue::U64(micros))]);
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            record_duration(Hist::SpanUs, self.name, elapsed_us(start));
        }
    }
}

fn elapsed_us(start: Instant) -> u64 {
    start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// A scoped histogram-only timer: the cheap sibling of [`span`] for hot
/// driver boundaries (e.g. one parallel scan). Arms only while the
/// registry is enabled — disarmed construction reads no clock — and the
/// drop records elapsed microseconds into `hist` without emitting any
/// event.
#[derive(Debug)]
pub struct HistTimer {
    hist: Hist,
    start: Option<Instant>,
}

/// Opens a [`HistTimer`] over `hist`.
pub fn timer(hist: Hist) -> HistTimer {
    HistTimer { hist, start: enabled().then(Instant::now) }
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            observe(self.hist, elapsed_us(start));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// The installed sink is process-global, so tests that install or
    /// tear one down serialize through this lock.
    static LOCK: StdMutex<()> = StdMutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A Vec-backed sink tests can read back. The Arc keeps a handle on
    /// the buffer after the box moves into the registry.
    #[derive(Clone)]
    struct Capture(Arc<StdMutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn captured(cap: &Capture) -> String {
        String::from_utf8(cap.0.lock().unwrap().clone()).unwrap()
    }

    #[test]
    fn emit_without_sink_is_a_noop() {
        let _g = guard();
        shutdown_events();
        assert!(!events_enabled());
        emit_event("ignored", &[("k", EventValue::U64(1))]);
    }

    #[test]
    #[cfg_attr(feature = "noop", ignore = "event emission is compiled out under the noop feature")]
    fn events_are_one_json_object_per_line() {
        if cfg!(feature = "noop") {
            return;
        }
        let _g = guard();
        let cap = Capture(Arc::new(StdMutex::new(Vec::new())));
        install_events_writer(Box::new(cap.clone()));
        emit_event(
            "cell_finished",
            &[
                ("algorithm", EventValue::Str("se")),
                ("ok", EventValue::Bool(true)),
                ("objective_value", EventValue::F64(12.5)),
                ("evaluations", EventValue::U64(42)),
                ("note", EventValue::Str("line\nbreak \"quoted\"")),
            ],
        );
        emit_event("race_done", &[("race", EventValue::U64(0))]);
        shutdown_events();
        let text = captured(&cap);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"event\":\"cell_finished\",\"algorithm\":\"se\",\"ok\":true,\
             \"objective_value\":12.5,\"evaluations\":42,\
             \"note\":\"line\\nbreak \\\"quoted\\\"\"}"
        );
        assert_eq!(lines[1], "{\"event\":\"race_done\",\"race\":0}");
        emit_event("after_shutdown", &[]);
        assert_eq!(captured(&cap).lines().count(), 2);
    }

    #[test]
    #[cfg_attr(feature = "noop", ignore = "event emission is compiled out under the noop feature")]
    fn spans_emit_and_cancel() {
        if cfg!(feature = "noop") {
            return;
        }
        let _g = guard();
        let cap = Capture(Arc::new(StdMutex::new(Vec::new())));
        install_events_writer(Box::new(cap.clone()));
        {
            let _s = span("scoped_work");
        }
        span("not_recorded").cancel();
        shutdown_events();
        let text = captured(&cap);
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"name\":\"scoped_work\""));
        assert!(text.contains("\"dur_us\":"));
        assert!(!text.contains("not_recorded"));
    }

    #[test]
    #[cfg_attr(feature = "noop", ignore = "event emission is compiled out under the noop feature")]
    fn nonfinite_floats_become_null() {
        if cfg!(feature = "noop") {
            return;
        }
        let _g = guard();
        let cap = Capture(Arc::new(StdMutex::new(Vec::new())));
        install_events_writer(Box::new(cap.clone()));
        emit_event("gap", &[("value", EventValue::F64(f64::INFINITY))]);
        shutdown_events();
        assert!(captured(&cap).contains("\"value\":null"));
    }
}
