//! # mshc-obs — determinism-safe observability
//!
//! The workspace-wide metrics and tracing layer: a process-global
//! registry of sharded atomic counters, max-gauges and log₂ duration
//! histograms, a JSONL event/span sink, and the [`Snapshot`] export
//! format consumed by `--metrics`, `run --report` and the bench
//! harness.
//!
//! ## The two planes
//!
//! Every metric belongs to exactly one plane (see [`Plane`]):
//!
//! * the **deterministic plane** ([`DeterministicPlane`]) holds
//!   algorithmic counters — evaluations, prunes, splices, prefix
//!   reuses, early stops, iterations, cell completions — that are
//!   reproducible run-to-run at a fixed thread count (and for
//!   evaluation counts, invariant across thread counts: the house
//!   invariant);
//! * the **timing plane** ([`TimingPlane`]) holds pool scheduling
//!   telemetry (steals, queue depths, wake epochs, per-worker chunk
//!   counts) and duration histograms, all of which vary with OS
//!   scheduling and wall clocks and are therefore **never** written
//!   into artifacts that CI byte-compares.
//!
//! ## Why instrumentation cannot change result bits
//!
//! The house invariant demands that enabling observability leaves
//! solutions, objective values, evaluation counts and trace records
//! bit-identical. The registry guarantees this structurally:
//!
//! 1. recording is *write-only*: no hot-path entry point returns a
//!    value that callers branch on, so no counter can feed back into
//!    chunking, move selection, or RNG draw order;
//! 2. recording is allocation-free and lock-free on the hot path — a
//!    relaxed atomic add on a thread-sharded cache line — so it cannot
//!    introduce synchronization that reorders work;
//! 3. the RNG streams never touch this crate: nothing here draws
//!    randomness or hands entropy to callers;
//! 4. event emission (which does take a mutex) happens only at coarse
//!    boundaries — cell finished, run ended — never inside evaluator
//!    loops, and emission failures are swallowed;
//! 5. when disabled (the default) every entry point is one relaxed
//!    load and a branch; with the `noop` cargo feature the bodies
//!    constant-fold to nothing.
//!
//! CI enforces the claim end-to-end by byte-comparing leaderboards and
//! run outputs with metrics on vs off at 1 and 8 threads, and the
//! facade's property tests replay seeds × objectives × strides ×
//! thread counts both ways.
//!
//! ## Usage
//!
//! ```
//! use mshc_obs as obs;
//!
//! obs::reset();
//! obs::enable(true);
//! obs::add(obs::Counter::Evaluations, 1);
//! {
//!     let _span = obs::span("scan");
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.deterministic.evaluations, 1);
//! obs::enable(false);
//! let json = snap.to_json(); // the `--metrics` wire format
//! assert!(json.contains("\"schema_version\":2"));
//! ```

mod events;
mod registry;
mod snapshot;

pub use events::{
    emit_event, events_enabled, install_events_file, install_events_writer, record_duration,
    shutdown_events, span, timer, EventValue, HistTimer, Span,
};
pub use registry::{
    add, counter_value, enable, enabled, gauge_max, observe, reset, snapshot, Counter, Gauge, Hist,
    Plane,
};
pub use snapshot::{DeterministicPlane, Histogram, Snapshot, TimingPlane, BUCKETS, SCHEMA_VERSION};
