//! Property tests for the platform substrate.

use mshc_platform::{pair_count, pair_index, HcSystem, MachineId, Matrix};
use mshc_taskgraph::{DataId, TaskId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pair indexing is a symmetric bijection onto `0..l(l-1)/2`.
    #[test]
    fn pair_indexing_bijective(l in 2usize..40) {
        let mut seen = vec![false; pair_count(l)];
        for a in 0..l {
            for b in (a + 1)..l {
                let i = pair_index(l, MachineId::from_usize(a), MachineId::from_usize(b));
                let j = pair_index(l, MachineId::from_usize(b), MachineId::from_usize(a));
                prop_assert_eq!(i, j);
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// System accessors agree with the raw matrices, for random shapes
    /// and costs.
    #[test]
    fn system_accessors_match_matrices(
        l in 1usize..6,
        k in 1usize..12,
        p in 0usize..15,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let exec = Matrix::from_fn(l, k, |_, _| rng.gen_range(0.5..100.0));
        let transfer = Matrix::from_fn(pair_count(l), p, |_, _| rng.gen_range(0.0..50.0));
        let sys = HcSystem::with_anonymous_machines(l, exec.clone(), transfer.clone()).unwrap();
        for t in 0..k {
            let task = TaskId::from_usize(t);
            // best machine minimizes the column
            let best = sys.best_machine(task);
            for m in 0..l {
                prop_assert!(
                    sys.exec_time(best, task) <= exec.get(m, t) + 1e-12
                );
                prop_assert_eq!(sys.exec_time(MachineId::from_usize(m), task), exec.get(m, t));
            }
            // ranking is sorted ascending
            let ranking = sys.machine_ranking(task);
            prop_assert_eq!(ranking.len(), l);
            for w in ranking.windows(2) {
                prop_assert!(sys.exec_time(w[0], task) <= sys.exec_time(w[1], task));
            }
            prop_assert_eq!(ranking[0], best);
            // mean matches direct computation
            let mean: f64 = (0..l).map(|m| exec.get(m, t)).sum::<f64>() / l as f64;
            prop_assert!((sys.mean_exec_time(task) - mean).abs() < 1e-9);
        }
        for d in 0..p {
            let data = DataId::from_usize(d);
            for a in 0..l {
                for b in 0..l {
                    let time = sys.transfer_time(
                        data,
                        MachineId::from_usize(a),
                        MachineId::from_usize(b),
                    );
                    if a == b {
                        prop_assert_eq!(time, 0.0);
                    } else {
                        let row = pair_index(
                            l,
                            MachineId::from_usize(a),
                            MachineId::from_usize(b),
                        );
                        prop_assert_eq!(time, transfer.get(row, d));
                    }
                }
            }
        }
    }

    /// Matrix column helpers agree with brute force.
    #[test]
    fn matrix_column_helpers(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let m = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-10.0..10.0));
        for c in 0..cols {
            let col: Vec<f64> = m.col_iter(c).collect();
            prop_assert_eq!(col.len(), rows);
            let (ri, rv) = m.col_min(c).unwrap();
            for (i, &v) in col.iter().enumerate() {
                prop_assert!(rv <= v + 1e-12);
                if v == rv {
                    prop_assert!(ri <= i, "ties resolve to the smallest row");
                    break;
                }
            }
            let ranking = m.col_ranking(c);
            for w in ranking.windows(2) {
                prop_assert!(m.get(w[0], c) <= m.get(w[1], c));
            }
        }
    }
}
