//! SE configuration knobs (§4.4–4.5 of the paper).

use serde::{Deserialize, Serialize};

/// How the allocation step commits a placement.
///
/// The paper's strategy is [`AllocationStrategy::BestFit`] ("it always
/// chooses the best location", §4.5). [`AllocationStrategy::FirstImprovement`]
/// is an ablation knob exercised by the benchmark harness: commit the
/// first candidate that improves on the current placement, trading
/// solution quality for fewer evaluations per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AllocationStrategy {
    /// Exhaustively try every valid (position, machine) combination and
    /// commit the best — the paper's constructive allocation.
    #[default]
    BestFit,
    /// Commit the first combination that strictly improves the schedule
    /// length; fall back to the best seen if none improves.
    FirstImprovement,
}

/// Closed-loop adaptation of the selection bias, in the spirit of Kling &
/// Banerjee's ESP (the paper's reference \[9\]), where selection pressure
/// is tuned dynamically rather than fixed.
///
/// The paper itself uses a *fixed* `B` (§4.4); this is an extension knob:
/// each iteration the bias moves by `gain × (selected_fraction −
/// target_fraction)`, so the selection set settles near
/// `target_fraction × k` tasks regardless of how the goodness
/// distribution evolves. The adapted bias is clamped to the paper's
/// published range `[−0.3, 0.1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveBias {
    /// Desired fraction of tasks selected per iteration (0..1).
    pub target_fraction: f64,
    /// Proportional gain applied to the fraction error.
    pub gain: f64,
}

impl Default for AdaptiveBias {
    fn default() -> Self {
        AdaptiveBias { target_fraction: 0.2, gain: 0.05 }
    }
}

/// Configuration of the SE scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeConfig {
    /// Selection bias `B` (§4.4): a task is selected when
    /// `rand[0,1] > g_i + B`. Negative values (−0.1..−0.3) select more
    /// tasks — thorough search for small instances; small positive values
    /// (0..0.1) restrict selection for large instances.
    pub selection_bias: f64,
    /// The `Y` parameter (§4.5): each task may only be (re-)assigned to
    /// its `Y` best-matching machines. `None` means all machines
    /// (`Y = l`). Values are clamped to `[1, l]` at run time.
    pub y_limit: Option<usize>,
    /// RNG seed; every run is fully deterministic given the seed.
    pub seed: u64,
    /// Upper bound on the random number of valid-range perturbations
    /// applied to the initial topological string (§4.2). `None` selects
    /// the default `2k`.
    pub init_perturbations: Option<usize>,
    /// Allocation commit policy (paper: best-fit).
    pub allocation: AllocationStrategy,
    /// Evaluate allocation candidates in parallel with Rayon. Results are
    /// bit-identical to the serial path (deterministic argmin); worthwhile
    /// only when `k × Y` is large enough to amortize fork/join overhead.
    pub parallel_allocation: bool,
    /// Use incremental (prefix-cached) evaluation during allocation: the
    /// base schedule is primed once per allocation scan and every
    /// candidate move is scored by checkpoint-resumed suffix replay,
    /// for any built-in objective. Every candidate *score* and therefore
    /// every decision is bit-identical to the full-pass route (covered
    /// by tests); only the reported evaluation counts differ (the
    /// priming pass is charged, so this route counts one more evaluation
    /// per scan — under a `max_evaluations` budget the two flag settings
    /// stop at different points). Disable only for the ablation
    /// benchmarks.
    pub incremental_eval: bool,
    /// Optional ESP-style closed-loop bias adaptation (extension; the
    /// paper uses the fixed `selection_bias` only). When set,
    /// `selection_bias` is the initial value.
    pub adaptive_bias: Option<AdaptiveBias>,
}

impl Default for SeConfig {
    fn default() -> Self {
        SeConfig {
            selection_bias: 0.0,
            y_limit: None,
            seed: 2001, // the paper's year; any fixed default works
            init_perturbations: None,
            allocation: AllocationStrategy::BestFit,
            parallel_allocation: false,
            incremental_eval: true,
            adaptive_bias: None,
        }
    }
}

impl SeConfig {
    /// The paper's guidance for `B` (§4.4): negative values (−0.1..−0.3)
    /// buy a thorough search, small positive values (0..0.1) restrict
    /// selection to keep iterations cheap on *large* problems.
    ///
    /// Where "large" starts is a hardware question, not an algorithmic
    /// one — the paper kept `B` positive at 100 tasks because each
    /// selected task costs `|valid range| × Y` full evaluations, which was
    /// expensive in 2001. On current hardware the thorough setting is
    /// comfortably affordable at that scale (and measurably better; see
    /// EXPERIMENTS.md), so the threshold sits higher here: the paper's
    /// 100-task comparison workloads get `B = −0.1`.
    pub fn recommended_bias(task_count: usize) -> f64 {
        if task_count <= 20 {
            -0.3
        } else if task_count <= 120 {
            -0.1
        } else if task_count <= 400 {
            0.05
        } else {
            0.1
        }
    }

    /// Builder-style: set the selection bias.
    pub fn with_bias(mut self, b: f64) -> SeConfig {
        self.selection_bias = b;
        self
    }

    /// Builder-style: set the `Y` limit.
    pub fn with_y(mut self, y: usize) -> SeConfig {
        self.y_limit = Some(y);
        self
    }

    /// Builder-style: set the seed.
    pub fn with_seed(mut self, seed: u64) -> SeConfig {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_faithful() {
        let c = SeConfig::default();
        assert_eq!(c.allocation, AllocationStrategy::BestFit);
        assert_eq!(c.y_limit, None);
        assert!(!c.parallel_allocation);
    }

    #[test]
    fn recommended_bias_follows_paper_ranges() {
        // All values must lie inside the paper's published ranges:
        // negative in [-0.3, -0.1] or positive in [0, 0.1].
        for k in [1usize, 7, 40, 100, 150, 500, 5000] {
            let b = SeConfig::recommended_bias(k);
            assert!(
                (-0.3..=-0.1).contains(&b) || (0.0..=0.1).contains(&b),
                "bias {b} for k={k} outside the paper's ranges"
            );
        }
        assert!(SeConfig::recommended_bias(7) < SeConfig::recommended_bias(100));
        assert!(SeConfig::recommended_bias(100) < 0.0, "comparison scale searches thoroughly");
        assert!(SeConfig::recommended_bias(1000) > 0.0, "very large DAGs restrict selection");
    }

    #[test]
    fn builders() {
        let c = SeConfig::default().with_bias(-0.2).with_y(3).with_seed(9);
        assert_eq!(c.selection_bias, -0.2);
        assert_eq!(c.y_limit, Some(3));
        assert_eq!(c.seed, 9);
    }
}
