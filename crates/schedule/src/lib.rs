//! # mshc-schedule
//!
//! Solution substrate for MSHC: the paper's combined matching+scheduling
//! string encoding (§4.1), validity and valid-range machinery (§4.2/§4.5),
//! the analytic evaluator, Gantt extraction, and an independent
//! discrete-event replay simulator used to cross-check the evaluator.
//!
//! ## The evaluation core
//!
//! All evaluation rests on two shared pieces: [`EvalSnapshot`] — a
//! flattened, `Sync` copy of one instance (predecessor CSR + dense
//! `E`/`Tr` slabs) that evaluators walk instead of the pointer-rich
//! [`mshc_platform::HcInstance`] — and [`Objective`] — pluggable
//! lower-is-better scoring (makespan, total/mean flowtime, load balance,
//! weighted blends), selected at run time through the [`ObjectiveKind`]
//! carried by [`RunBudget`], with an incremental-accumulator interface
//! ([`ObjectiveState`]: fold one completed task, finalize) on top of the
//! array-based one.
//!
//! On that base sits a **three-tier evaluation stack**; pick the lowest
//! tier whose shape matches the work:
//!
//! 1. **scalar** — [`Evaluator`]: one full O(k + p) left-to-right pass
//!    per solution. Right for one-off scoring, reports, and arbitrary
//!    (non-incremental) custom objectives.
//! 2. **batch** — [`BatchEvaluator`]: scores whole candidate sets in one
//!    call, fanned out over worker threads with reusable per-thread
//!    arenas; results come back in candidate order, bit-identical at any
//!    thread count. Right for independent candidate sets — arbitrary
//!    whole solutions with no shared lineage.
//! 3. **incremental** — [`IncrementalEvaluator`]: primes a base solution
//!    once, checkpoints frontier state every `⌈√k⌉` positions, and scores
//!    candidates sharing a prefix with the base by replaying only the
//!    disturbed suffix — exact (bit-identical to a full pass),
//!    asymptotically cheaper than tier 1 per candidate. Two entry
//!    shapes: *single-task moves*
//!    ([`score_move`](IncrementalEvaluator::score_move)) for move scans
//!    against a fixed base — SE's allocation ripple, tabu's sampled
//!    neighborhood, SA's proposal loop — and *arbitrary
//!    prefix-sharing candidates*
//!    ([`score_suffix`](IncrementalEvaluator::score_suffix)) for GA
//!    crossover offspring, which share a literal prefix with a parent
//!    up to their first divergence. The batch move-scoring and
//!    population-scoring ([`score_population`](BatchEvaluator::score_population))
//!    entry points route through per-thread incremental evaluators
//!    automatically, so tiers 2 and 3 compose: GA rides tier 3 like
//!    every other algorithm in the portfolio.
//!
//! *Why suffix replay cannot change fitness bits*: the replay starts
//! from checkpointed frontier state reached by walking exactly the
//! shared prefix (identical segments ⇒ identical floating-point state,
//! since the walk is deterministic and order-preserving), then replays
//! the child's own segments one by one with the same fold a full pass
//! would apply. No value is approximated, reordered, or recomputed
//! along a different association order, so every intermediate — and
//! hence the final objective value — is the same IEEE-754 bit pattern
//! the scalar evaluator produces. Selection pressure in roulette-style
//! algorithms depends on exact fitness values, which is why the
//! population path never engages bound pruning: every child gets its
//! exact score.
//!
//! Tier 3's **fast path** cuts the replay itself two ways, both exact:
//!
//! * **Bound pruning**
//!   ([`score_move_bounded`](IncrementalEvaluator::score_move_bounded)):
//!   the caller's best-so-far score rides along, and the replay abandons
//!   a candidate the moment the objective's monotone
//!   [`lower bound`](Objective::lower_bound) reaches it.
//!   *Why this can never change a selection*: suppose the scan's
//!   incumbent scored `b` and a later candidate is pruned. Pruning
//!   required `lower_bound >= b`, and the true score is at least the
//!   lower bound, so the candidate's score is `>= b` — it either loses
//!   to the incumbent outright or ties it, and every scan in the suite
//!   commits strict improvements with earliest-index tie-breaking, so a
//!   tie loses to the earlier incumbent whether it was scored exactly
//!   or abandoned. The winner itself can never be pruned: every bound
//!   it is checked against comes from a strictly worse (or infinite)
//!   score, which its own lower bound cannot reach. Pruned candidates
//!   still count as one evaluation each, so evaluation counts are
//!   unchanged too.
//! * **Reconvergence splicing**: priming precomputes per-checkpoint
//!   suffix aggregates; when a replay's frontier bitwise re-converges
//!   with the base walk at a checkpoint boundary (past the disturbed
//!   window and every perturbed consumer), the tail is spliced from the
//!   aggregates instead of replayed — O(disturbed region) per move, not
//!   O(k − pos). Only exact merges are taken (`max` for makespan; the
//!   full-state identity splice otherwise), preserving bit-identity.
//!
//! ## The encoding
//!
//! A solution is a string of `k` segments, each pairing a subtask with a
//! machine. Pairing `s_i` with `m_j` assigns `s_i` to `m_j` (*matching*);
//! if `s_x` appears left of `s_y` and both are on the same machine, `s_x`
//! runs first (*scheduling*). The paper's §4.2 constructs initial strings
//! as topological orders and §4.5 only ever moves a task within its
//! *valid range*, so strings remain **global linear extensions** of the
//! DAG throughout. [`Solution`] enforces exactly that invariant.
//!
//! (The paper's Figure 2 prints a string whose global order is not a
//! linear extension — `s5` appears left of `s3` although `s3` precedes
//! `s5` — but the two sit on different machines, so the *schedule* it
//! denotes is the same one our canonical string `s0 s1 s2 s3 s4 s5 s6`
//! with the same assignment denotes. Keeping strings canonical linear
//! extensions loses no schedules: any precedence-feasible combination of
//! per-machine orders is induced by some linear extension.)
//!
//! ## Evaluation model
//!
//! The standard macro-dataflow model implied by §2: a task starts once
//! (a) its machine has finished every task earlier in that machine's
//! order and (b) every input data item has arrived; data item `d` sent
//! from `m_a` to `m_b` takes `Tr[{a,b}][d]` (zero if `a == b`); links are
//! contention-free and sends do not occupy the producer. The makespan is
//! the latest finish time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod encoding;
pub mod error;
pub mod eval;
pub mod faults;
pub mod gantt;
pub mod incremental;
pub mod init;
pub mod lower_bound;
pub mod objective;
pub mod replan;
pub mod runner;
pub mod sim;
pub mod snapshot;
pub mod steppable;

pub use batch::{BatchEvaluator, BestMove, Descent};
pub use encoding::{Segment, Solution};
pub use error::ScheduleError;
pub use eval::{Evaluator, ScheduleReport};
pub use faults::{CellFault, FaultPlan, FAULT_PANIC_PREFIX};
pub use gantt::Gantt;
pub use incremental::{auto_stride, IncrementalEvaluator, MoveScore, ScanStats};
pub use init::random_solution;
pub use lower_bound::{next_up, InstanceBound};
pub use objective::{
    objective_from_report, BoundHints, EvalView, LoadBalance, Makespan, MeanFlowtime, Objective,
    ObjectiveKind, ObjectiveState, ObjectiveValues, SuffixView, TotalFlowtime, Weighted,
};
pub use replan::{
    Disturbance, DisturbanceKind, DisturbanceRecord, ReplanError, ReplanReport, Replanner,
};
pub use runner::{
    certified_gap, report_objective_value, CancelToken, RunBudget, RunResult, Scheduler,
    Termination,
};
pub use sim::{replay, replay_with, NetworkModel, SimError};
pub use snapshot::EvalSnapshot;
pub use steppable::{
    run_stepped, Incumbent, OneShotStep, SearchStep, StepVerdict, SteppableSearch,
};
