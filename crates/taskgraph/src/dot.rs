//! Graphviz DOT export for task graphs.
//!
//! Purely a debugging/documentation aid: `dot -Tsvg` on the output renders
//! the DAG the way the paper's Figure 1a is drawn.

use crate::graph::TaskGraph;
use crate::ids::TaskId;
use std::fmt::Write as _;

/// Renders the graph in DOT syntax.
///
/// `label` supplies an optional extra line per task (e.g. execution times);
/// return `None` for a bare `s<i>` label.
pub fn to_dot(graph: &TaskGraph, mut label: impl FnMut(TaskId) -> Option<String>) -> String {
    let mut out = String::with_capacity(64 + 32 * (graph.task_count() + graph.data_count()));
    out.push_str("digraph task_graph {\n  rankdir=TB;\n  node [shape=circle];\n");
    for t in graph.tasks() {
        match label(t) {
            Some(extra) => {
                let _ = writeln!(out, "  t{} [label=\"{}\\n{}\"];", t.raw(), t, extra);
            }
            None => {
                let _ = writeln!(out, "  t{} [label=\"{}\"];", t.raw(), t);
            }
        }
    }
    for e in graph.edges() {
        let _ = writeln!(out, "  t{} -> t{} [label=\"{}\"];", e.src.raw(), e.dst.raw(), e.id);
    }
    out.push_str("}\n");
    out
}

/// Renders with bare labels.
pub fn to_dot_plain(graph: &TaskGraph) -> String {
    to_dot(graph, |_| None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraphBuilder;

    fn tiny() -> TaskGraph {
        let mut b = TaskGraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let g = tiny();
        let dot = to_dot_plain(&g);
        assert!(dot.starts_with("digraph task_graph {"));
        assert!(dot.contains("t0 [label=\"s0\"];"));
        assert!(dot.contains("t0 -> t1 [label=\"d0\"];"));
        assert!(dot.contains("t0 -> t2 [label=\"d1\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_with_labels() {
        let g = tiny();
        let dot = to_dot(&g, |t| Some(format!("w={}", t.raw() * 10)));
        assert!(dot.contains("s1\\nw=10"));
    }

    #[test]
    fn dot_is_line_per_element() {
        let g = tiny();
        let dot = to_dot_plain(&g);
        // 3 node lines + 2 edge lines + 3 boilerplate lines + closing brace
        assert_eq!(dot.lines().count(), 9);
    }
}
