//! Shared workload shapes for the evaluation-throughput probes.
//!
//! The criterion `batch_candidates` group and the `bench_eval` binary
//! (the `BENCH_eval.json` emitter) must measure the *same* candidate
//! grid so their numbers stay comparable; both build it here.

use mshc_platform::{HcInstance, MachineId};
use mshc_schedule::Solution;
use mshc_taskgraph::TaskId;

/// The SE allocation-scan shape at its widest: picks the task of `base`
/// with the widest valid range (ties to the lowest id) and returns its
/// full `(position × machine)` candidate grid minus the incumbent
/// placement — the biggest realistic single-task fan-out on this
/// instance.
pub fn widest_move_grid(inst: &HcInstance, base: &Solution) -> (TaskId, Vec<(usize, MachineId)>) {
    let g = inst.graph();
    let t = g
        .tasks()
        .max_by_key(|&t| {
            let (lo, hi) = base.valid_range(g, t);
            hi - lo
        })
        .expect("non-empty graph");
    let (lo, hi) = base.valid_range(g, t);
    let moves = (lo..=hi)
        .flat_map(|pos| (0..inst.machine_count()).map(move |m| (pos, MachineId::from_usize(m))))
        .filter(|&(pos, m)| pos != base.position_of(t) || m != base.machine_of(t))
        .collect();
    (t, moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_workloads::WorkloadSpec;
    use rand::SeedableRng;

    #[test]
    fn grid_excludes_incumbent_and_stays_in_range() {
        let inst = WorkloadSpec::small(3).generate();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let base = mshc_schedule::random_solution(&inst, &mut rng);
        let (t, moves) = widest_move_grid(&inst, &base);
        let (lo, hi) = base.valid_range(inst.graph(), t);
        assert!(!moves.is_empty());
        for &(pos, m) in &moves {
            assert!((lo..=hi).contains(&pos));
            assert!(m.index() < inst.machine_count());
            assert!(pos != base.position_of(t) || m != base.machine_of(t));
        }
        assert_eq!(moves.len(), (hi - lo + 1) * inst.machine_count() - 1);
    }
}
