//! CSV/plot emission for the figure runners.

use crate::experiments::{Fig3Result, Fig4Result, RaceResult};
use mshc_trace::{write_csv, AsciiPlot, CsvTable, Series};
use std::io;
use std::path::Path;

/// Maximum points per exported series (keeps CSVs and plots readable).
const MAX_POINTS: usize = 400;

/// Writes `results/fig3a.csv` (+`fig3b.csv`) and returns terminal plots.
pub fn emit_fig3(r: &Fig3Result, dir: &Path) -> io::Result<String> {
    let selected = r.trace.selected_series().downsampled(MAX_POINTS);
    let length = r.trace.current_cost_series().downsampled(MAX_POINTS);
    write_csv("iteration", std::slice::from_ref(&selected)).write_file(dir.join("fig3a.csv"))?;
    write_csv("iteration", std::slice::from_ref(&length)).write_file(dir.join("fig3b.csv"))?;
    let mut out =
        AsciiPlot::new("Fig 3a: selected subtasks vs iteration", 72, 14).render(&[selected]);
    out.push_str(&AsciiPlot::new("Fig 3b: schedule length vs iteration", 72, 14).render(&[length]));
    Ok(out)
}

/// Writes `results/fig4a.csv` or `fig4b.csv` and returns a terminal plot.
pub fn emit_fig4(r: &Fig4Result, dir: &Path, file: &str) -> io::Result<String> {
    let series: Vec<Series> = r
        .runs
        .iter()
        .map(|(y, trace, _)| {
            trace.current_cost_series().downsampled(MAX_POINTS).renamed(format!("Y={y}"))
        })
        .collect();
    write_csv("iteration", &series).write_file(dir.join(file))?;
    Ok(AsciiPlot::new(
        format!("Fig 4 ({:?} heterogeneity): schedule length vs iteration", r.heterogeneity),
        72,
        14,
    )
    .render(&series))
}

/// Writes `results/fig{5,6,7}.csv` (best-so-far vs wall seconds for SE
/// and GA, plus the evaluation-count axis) and returns a terminal plot.
pub fn emit_race(r: &RaceResult, dir: &Path, file: &str) -> io::Result<String> {
    let se_t = r.se.0.best_vs_time_series().downsampled(MAX_POINTS).renamed("se");
    let ga_t = r.ga.0.best_vs_time_series().downsampled(MAX_POINTS).renamed("ga");
    write_csv("seconds", &[se_t.clone(), ga_t.clone()]).write_file(dir.join(file))?;
    let se_e = r.se.0.best_vs_evals_series().downsampled(MAX_POINTS).renamed("se");
    let ga_e = r.ga.0.best_vs_evals_series().downsampled(MAX_POINTS).renamed("ga");
    let evals_file = file.replace(".csv", "_evals.csv");
    write_csv("evaluations", &[se_e, ga_e]).write_file(dir.join(evals_file))?;
    Ok(AsciiPlot::new(
        format!("{}: best schedule length vs time (s)", file.trim_end_matches(".csv")),
        72,
        14,
    )
    .render(&[se_t, ga_t]))
}

/// Writes a summary table of `(name, makespan)` rows.
pub fn emit_band(rows: &[(String, f64)], dir: &Path, file: &str) -> io::Result<()> {
    let mut t = CsvTable::new(["algorithm", "makespan"]);
    for (name, mk) in rows {
        t.push_row([name.clone(), format!("{mk}")]);
    }
    t.write_file(dir.join(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{fig3, fig4, fig5_7, ExperimentScale};
    use mshc_workloads::{FigureWorkload, Heterogeneity};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("mshc_bench_report").join(name);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn fig3_emission_writes_csvs() {
        let d = tmpdir("fig3");
        let r = fig3(&ExperimentScale::fast());
        let art = emit_fig3(&r, &d).unwrap();
        assert!(art.contains("Fig 3a"));
        let a = std::fs::read_to_string(d.join("fig3a.csv")).unwrap();
        assert!(a.starts_with("iteration,selected"));
        assert!(a.lines().count() > 10);
        let b = std::fs::read_to_string(d.join("fig3b.csv")).unwrap();
        assert!(b.starts_with("iteration,current_cost"));
    }

    #[test]
    fn fig4_emission_has_y_columns() {
        let d = tmpdir("fig4");
        let r = fig4(Heterogeneity::Low, &[2, 4], &ExperimentScale::fast());
        let art = emit_fig4(&r, &d, "fig4a.csv").unwrap();
        assert!(art.contains("Y=2"));
        let csv = std::fs::read_to_string(d.join("fig4a.csv")).unwrap();
        assert!(csv.starts_with("iteration,Y=2,Y=4"));
    }

    #[test]
    fn race_emission_writes_both_axes() {
        let d = tmpdir("race");
        let r = fig5_7(FigureWorkload::Fig7, &ExperimentScale::fast());
        emit_race(&r, &d, "fig7.csv").unwrap();
        let t = std::fs::read_to_string(d.join("fig7.csv")).unwrap();
        assert!(t.starts_with("seconds,se,ga"));
        let e = std::fs::read_to_string(d.join("fig7_evals.csv")).unwrap();
        assert!(e.starts_with("evaluations,se,ga"));
    }

    #[test]
    fn band_emission() {
        let d = tmpdir("band");
        emit_band(&[("heft".to_string(), 10.0), ("min-min".to_string(), 12.5)], &d, "band.csv")
            .unwrap();
        let t = std::fs::read_to_string(d.join("band.csv")).unwrap();
        assert_eq!(t, "algorithm,makespan\nheft,10\nmin-min,12.5\n");
    }
}
