//! Machine-dropout replanning: freeze the committed prefix of a running
//! schedule at a disturbance, rebuild the residual problem on the
//! surviving machines, re-prime the incremental machinery from the
//! disturbed frontier, and re-run a search on what is left.
//!
//! ## The disturbance model
//!
//! A [`Disturbance`] hits the virtual timeline of an executing schedule
//! at time *t* (schedule time, not wall clock):
//!
//! * **machine failure** — the machine vanishes; every unfinished task
//!   must be replanned onto the survivors;
//! * **machine slowdown** — the machine's execution times scale by
//!   `factor` for all remaining work;
//! * **task duration inflation** — every remaining task's execution
//!   time scales by `factor` (a global misestimation correction).
//!
//! ## Checkpoint/restart semantics
//!
//! The committed prefix is the set of tasks whose *finish* time is at
//! or before *t*: their outputs are treated as persisted and globally
//! available, so dropped edges from committed producers cost nothing in
//! the residual problem. Tasks started but unfinished at *t* are
//! aborted and rescheduled from scratch (partial work is lost), and
//! every survivor machine is free at *t*. Because a task's
//! predecessors all finish before it starts, the committed set is
//! automatically closed under precedence — the residual task set is a
//! well-formed sub-DAG.
//!
//! The disturbed makespan therefore composes additively: `t` plus the
//! residual schedule's makespan, and the certified floor composes the
//! same way (`t` plus the residual instance's
//! [`InstanceBound`](crate::InstanceBound) floor), so every replanned
//! run still reports a certificate gap `>= 1`.
//!
//! ## Re-priming from the disturbed frontier
//!
//! The *carryover* solution keeps the residual tasks in the original
//! string order (a linear extension of the original DAG restricted to a
//! sub-DAG is still a linear extension) with their original machine
//! assignments, remapping tasks stranded on a failed machine to their
//! best surviving machine. [`Replanner::apply`] primes an
//! [`IncrementalEvaluator`] with it — the PR 3/5/8 prefix-checkpoint
//! machinery, now primed from the disturbed frontier — scores it
//! exactly, injects it as the search's starting incumbent, and lets the
//! search improve from there. The search can only return something at
//! least as good as the carryover.
//!
//! Everything here is deterministic: no RNG is consumed outside the
//! search's own seeded stream, and no wall-clock value flows into any
//! returned or serialized field, so a replanned run is byte-identical
//! at any thread count (the `mshc replan` determinism gate).

use crate::encoding::{Segment, Solution};
use crate::error::ScheduleError;
use crate::eval::Evaluator;
use crate::incremental::IncrementalEvaluator;
use crate::runner::{certified_gap, RunBudget};
use crate::steppable::SteppableSearch;
use mshc_platform::{pair::pair_from_index, pair_count, HcInstance, HcSystem, MachineId, Matrix};
use mshc_taskgraph::{TaskGraphBuilder, TaskId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of disturbance hit the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisturbanceKind {
    /// The machine vanishes at time `t`; unfinished work is replanned
    /// onto the survivors. `factor` is ignored.
    MachineFailure,
    /// The machine's execution times scale by `factor` from `t` on.
    MachineSlowdown,
    /// Every remaining task's execution time scales by `factor`.
    /// `machine` is ignored.
    TaskInflation,
}

impl DisturbanceKind {
    /// Stable lowercase identifier for reports and the CLI.
    pub fn as_str(&self) -> &'static str {
        match self {
            DisturbanceKind::MachineFailure => "machine-failure",
            DisturbanceKind::MachineSlowdown => "machine-slowdown",
            DisturbanceKind::TaskInflation => "task-inflation",
        }
    }
}

impl fmt::Display for DisturbanceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

fn default_factor() -> f64 {
    1.0
}

/// One disturbance event on the virtual timeline. A flat struct (like
/// the workload `Scenario`) so it serializes through the vendored serde
/// shim; `machine` always names an **original** machine id, even for
/// disturbances applied after earlier failures shrank the platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Disturbance {
    /// What happened.
    pub kind: DisturbanceKind,
    /// Absolute virtual (schedule) time of the event; must be strictly
    /// after any earlier disturbance's time.
    pub time: f64,
    /// The affected machine (original id); ignored for
    /// [`TaskInflation`](DisturbanceKind::TaskInflation).
    #[serde(default)]
    pub machine: u32,
    /// Slowdown/inflation multiplier (> 0, finite); ignored for
    /// [`MachineFailure`](DisturbanceKind::MachineFailure).
    #[serde(default = "default_factor")]
    pub factor: f64,
}

/// Why a disturbance could not be applied. Unlike budget/deadline
/// degradation (which is graceful), these are caller errors: a
/// malformed disturbance has no meaningful recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplanError {
    /// The disturbance time is not a finite number.
    InvalidTime {
        /// The offending time.
        time: f64,
    },
    /// The disturbance is at or before the previous replan's time —
    /// traces must be strictly ascending.
    OutOfOrder {
        /// The offending time.
        time: f64,
        /// The time of the previous disturbance.
        base: f64,
    },
    /// A slowdown/inflation factor that is not finite and positive.
    InvalidFactor {
        /// The offending factor.
        factor: f64,
    },
    /// The disturbance names a machine the original platform never had.
    MachineOutOfRange {
        /// The offending machine id.
        machine: u32,
        /// Machines in the original platform.
        machine_count: usize,
    },
    /// The disturbance names a machine that already failed earlier in
    /// the trace.
    MachineAlreadyFailed {
        /// The machine (original id).
        machine: u32,
    },
    /// Failing this machine would leave no survivors to replan onto.
    NoSurvivors {
        /// The machine whose failure was rejected (original id).
        machine: u32,
    },
    /// The replan budget failed [`RunBudget::validate`].
    Budget(ScheduleError),
}

impl fmt::Display for ReplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplanError::InvalidTime { time } => {
                write!(f, "disturbance time {time} must be finite")
            }
            ReplanError::OutOfOrder { time, base } => write!(
                f,
                "disturbance at time {time} is not after the previous replan at {base}: \
                 traces must be strictly ascending in time"
            ),
            ReplanError::InvalidFactor { factor } => {
                write!(f, "disturbance factor {factor} must be finite and positive")
            }
            ReplanError::MachineOutOfRange { machine, machine_count } => {
                write!(f, "machine {machine} out of range (platform has {machine_count})")
            }
            ReplanError::MachineAlreadyFailed { machine } => {
                write!(f, "machine {machine} already failed earlier in the trace")
            }
            ReplanError::NoSurvivors { machine } => {
                write!(f, "failing machine {machine} would leave no survivors to replan onto")
            }
            ReplanError::Budget(e) => write!(f, "replan budget invalid: {e}"),
        }
    }
}

impl std::error::Error for ReplanError {}

/// The deterministic record of one applied disturbance. All fields are
/// schedule-time or count valued — no wall-clock data — so serialized
/// records are byte-identical at any thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisturbanceRecord {
    /// The disturbance kind.
    pub kind: DisturbanceKind,
    /// Absolute virtual time of the event.
    pub time: f64,
    /// Affected machine (original id; 0 for task inflation).
    pub machine: u32,
    /// Slowdown/inflation factor (1.0 for failures).
    pub factor: f64,
    /// Tasks frozen (finished at or before the event).
    pub committed: u64,
    /// Tasks replanned (0 means the schedule had already finished and
    /// no replan ran).
    pub residual: u64,
    /// Machines available to the residual problem.
    pub survivors: u64,
    /// The carryover (frontier) solution's residual objective value.
    pub carryover_cost: f64,
    /// The best residual objective value after the replan search.
    pub replanned_cost: f64,
    /// Absolute disturbed makespan: `time` + the residual makespan.
    pub makespan: f64,
    /// Absolute certified floor: `time` + the residual instance floor
    /// (makespan objective only).
    pub lower_bound: Option<f64>,
    /// `makespan / lower_bound` (`>= 1` by the certificate contract).
    pub gap: Option<f64>,
    /// Evaluations the replan search performed.
    pub evaluations: u64,
    /// Iterations the replan search performed.
    pub iterations: u64,
    /// The replan search's [`Termination`](crate::Termination) label.
    pub termination: String,
}

/// The deterministic end-to-end report of a disturbed run — the payload
/// of `mshc replan` and the artifact the determinism gate byte-compares
/// across thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanReport {
    /// The undisturbed baseline schedule's makespan.
    pub baseline_makespan: f64,
    /// One record per disturbance, in application order.
    pub records: Vec<DisturbanceRecord>,
    /// Disturbances that actually triggered a replan pass.
    pub replans: u64,
    /// Final absolute makespan after all disturbances.
    pub final_makespan: f64,
    /// Final absolute certified floor (from the last replan), if any.
    pub lower_bound: Option<f64>,
    /// `final_makespan / lower_bound`.
    pub gap: Option<f64>,
    /// Total evaluations across all replan searches.
    pub evaluations: u64,
}

impl ReplanReport {
    /// Serializes to the `mshc replan` JSON wire format.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("replan report serialization is infallible")
    }

    /// Parses the `mshc replan` JSON wire format.
    pub fn from_json(s: &str) -> Result<ReplanReport, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Replanning driver: owns the evolving (instance, solution, time)
/// state of a disturbed run and applies disturbances one at a time.
pub struct Replanner<'a> {
    orig: &'a HcInstance,
    /// The current residual instance after earlier replans (`None`
    /// while still on the original).
    cur: Option<HcInstance>,
    cur_sol: Solution,
    base_time: f64,
    /// Current machine index → original machine id.
    machine_map: Vec<MachineId>,
    baseline_makespan: f64,
    records: Vec<DisturbanceRecord>,
    replans: u64,
    evaluations: u64,
}

impl<'a> Replanner<'a> {
    /// Starts a disturbed run from a baseline schedule on `inst`.
    pub fn new(inst: &'a HcInstance, baseline: Solution) -> Replanner<'a> {
        let baseline_makespan = Evaluator::new(inst).makespan(&baseline);
        Replanner {
            orig: inst,
            cur: None,
            cur_sol: baseline,
            base_time: 0.0,
            machine_map: (0..inst.machine_count()).map(MachineId::from_usize).collect(),
            baseline_makespan,
            records: Vec::new(),
            replans: 0,
            evaluations: 0,
        }
    }

    fn current(&self) -> &HcInstance {
        self.cur.as_ref().unwrap_or(self.orig)
    }

    /// The best-known schedule for the *current* residual problem (the
    /// baseline before any disturbance applies).
    pub fn current_solution(&self) -> &Solution {
        &self.cur_sol
    }

    /// Applies one disturbance: freezes the committed prefix at the
    /// event time, rebuilds the residual problem on the survivors,
    /// primes the incremental evaluator with the carryover frontier,
    /// runs `search` on the residual under `budget` (carryover injected
    /// as the starting incumbent), and advances the run state. Returns
    /// the deterministic record of what happened.
    pub fn apply(
        &mut self,
        d: &Disturbance,
        search: &mut dyn SteppableSearch,
        budget: &RunBudget,
    ) -> Result<DisturbanceRecord, ReplanError> {
        budget.validate().map_err(ReplanError::Budget)?;
        if !d.time.is_finite() {
            return Err(ReplanError::InvalidTime { time: d.time });
        }
        if d.time <= self.base_time {
            return Err(ReplanError::OutOfOrder { time: d.time, base: self.base_time });
        }
        let t_rel = d.time - self.base_time;
        if matches!(d.kind, DisturbanceKind::MachineSlowdown | DisturbanceKind::TaskInflation)
            && !(d.factor.is_finite() && d.factor > 0.0)
        {
            return Err(ReplanError::InvalidFactor { factor: d.factor });
        }
        // Map the (original-id) target machine into current coordinates.
        let target = match d.kind {
            DisturbanceKind::TaskInflation => None,
            _ => {
                if d.machine as usize >= self.orig.machine_count() {
                    return Err(ReplanError::MachineOutOfRange {
                        machine: d.machine,
                        machine_count: self.orig.machine_count(),
                    });
                }
                let cur = self
                    .machine_map
                    .iter()
                    .position(|m| m.index() == d.machine as usize)
                    .ok_or(ReplanError::MachineAlreadyFailed { machine: d.machine })?;
                Some(cur)
            }
        };

        // Freeze: committed = finished at or before the event.
        let inst = self.current();
        let report = Evaluator::new(inst).report(&self.cur_sol);
        let residual_order: Vec<Segment> = self
            .cur_sol
            .segments()
            .iter()
            .copied()
            .filter(|seg| report.finish_of(seg.task) > t_rel)
            .collect();
        let committed = (inst.task_count() - residual_order.len()) as u64;

        if residual_order.is_empty() {
            // The schedule had already finished: nothing to replan. The
            // run state is untouched (later disturbances are no-ops for
            // the same reason).
            let record = DisturbanceRecord {
                kind: d.kind,
                time: d.time,
                machine: d.machine,
                factor: d.factor,
                committed,
                residual: 0,
                survivors: self.machine_map.len() as u64,
                carryover_cost: 0.0,
                replanned_cost: 0.0,
                makespan: self.base_time + report.makespan,
                lower_bound: None,
                gap: None,
                evaluations: 0,
                iterations: 0,
                termination: "completed".to_string(),
            };
            self.records.push(record.clone());
            return Ok(record);
        }

        // Survivor machines, in current-coordinate order.
        let survivors: Vec<usize> = match d.kind {
            DisturbanceKind::MachineFailure => {
                let failed = target.expect("failure always has a target");
                if self.machine_map.len() == 1 {
                    return Err(ReplanError::NoSurvivors { machine: d.machine });
                }
                (0..self.machine_map.len()).filter(|&m| m != failed).collect()
            }
            _ => (0..self.machine_map.len()).collect(),
        };
        let l_res = survivors.len();

        mshc_obs::add(mshc_obs::Counter::Replans, 1);
        let _replan_timer = mshc_obs::timer(mshc_obs::Hist::ReplanUs);

        // Residual task ids: dense, ordered by current task id.
        let mut keep: Vec<TaskId> = residual_order.iter().map(|s| s.task).collect();
        keep.sort_by_key(|t| t.index());
        let mut new_id = vec![u32::MAX; inst.task_count()];
        for (i, t) in keep.iter().enumerate() {
            new_id[t.index()] = i as u32;
        }

        // Residual sub-DAG: edges with both endpoints unfinished, in the
        // original data-item order. Edges from committed producers drop
        // out — their outputs are persisted at the freeze time.
        let mut builder = TaskGraphBuilder::new(keep.len());
        let mut kept_data = Vec::new();
        for e in inst.graph().edges() {
            let (src, dst) = (new_id[e.src.index()], new_id[e.dst.index()]);
            if src != u32::MAX && dst != u32::MAX {
                builder.add_edge(src, dst).expect("sub-DAG edges are in range and acyclic");
                kept_data.push(e.id);
            }
        }
        let graph = builder.build().expect("at least one residual task");

        // Residual platform: exec sliced from the current system with the
        // disturbance folded in; transfers sliced for survivor pairs.
        let sys = inst.system();
        let exec = Matrix::from_fn(l_res, keep.len(), |r, c| {
            let m = MachineId::from_usize(survivors[r]);
            let mut v = sys.exec_time(m, keep[c]);
            match d.kind {
                DisturbanceKind::MachineSlowdown if Some(survivors[r]) == target => {
                    v *= d.factor;
                }
                DisturbanceKind::TaskInflation => v *= d.factor,
                _ => {}
            }
            v
        });
        let transfer = Matrix::from_fn(pair_count(l_res), kept_data.len(), |row, col| {
            let (a, b) = pair_from_index(l_res, row);
            sys.transfer_time(
                kept_data[col],
                MachineId::from_usize(survivors[a.index()]),
                MachineId::from_usize(survivors[b.index()]),
            )
        });
        let system = HcSystem::with_anonymous_machines(l_res, exec, transfer)
            .expect("residual matrices inherit validity from the original system");
        let res_inst = HcInstance::new(graph, system)
            .expect("residual graph and system are dimensioned together");

        // Carryover: residual tasks in original string order (a linear
        // extension of the sub-DAG), original machines where they
        // survived, best surviving machine otherwise.
        let mut survivor_index = vec![usize::MAX; self.machine_map.len()];
        for (i, &m) in survivors.iter().enumerate() {
            survivor_index[m] = i;
        }
        let segments: Vec<Segment> = residual_order
            .iter()
            .map(|seg| {
                let t = TaskId::new(new_id[seg.task.index()]);
                let mapped = survivor_index[seg.machine.index()];
                let machine = if mapped != usize::MAX {
                    MachineId::from_usize(mapped)
                } else {
                    res_inst.system().best_machine(t)
                };
                Segment { task: t, machine }
            })
            .collect();
        let carryover = Solution::new(res_inst.graph(), l_res, segments)
            .expect("carryover order is a linear extension of the sub-DAG");

        // Re-prime the incremental evaluator from the disturbed frontier
        // and score the carryover exactly (primes are uncounted; the
        // zero-divergence suffix score is the primed end state).
        let mut inc = IncrementalEvaluator::new(&res_inst);
        inc.set_stride(budget.checkpoint_stride);
        inc.set_pruning(budget.prune);
        inc.prime(&carryover);
        let carryover_cost = inc.score_suffix(&carryover, carryover.len(), &budget.objective);
        drop(inc);

        // Run the search on the residual, seeded with the carryover.
        let result = {
            let mut state = search.start(&res_inst, budget);
            state.inject(&carryover, carryover_cost);
            let _ = state.step(u64::MAX, None);
            state.result()
        };
        let makespan = d.time + result.makespan;
        let lower_bound = result.lower_bound.map(|floor| d.time + floor);
        let record = DisturbanceRecord {
            kind: d.kind,
            time: d.time,
            machine: d.machine,
            factor: d.factor,
            committed,
            residual: keep.len() as u64,
            survivors: l_res as u64,
            carryover_cost,
            replanned_cost: result.objective_value,
            makespan,
            lower_bound,
            gap: certified_gap(lower_bound, makespan),
            evaluations: result.evaluations,
            iterations: result.iterations,
            termination: result.termination.as_str().to_string(),
        };

        // Advance the run state onto the residual problem.
        self.machine_map = survivors.iter().map(|&m| self.machine_map[m]).collect();
        self.cur = Some(res_inst);
        self.cur_sol = result.solution;
        self.base_time = d.time;
        self.replans += 1;
        self.evaluations += result.evaluations;
        self.records.push(record.clone());
        Ok(record)
    }

    /// Assembles the deterministic end-to-end report.
    pub fn report(&self) -> ReplanReport {
        let (final_makespan, lower_bound, gap) = match self.records.last() {
            Some(r) if r.residual > 0 => (r.makespan, r.lower_bound, r.gap),
            Some(r) => (r.makespan, None, None),
            None => (self.baseline_makespan, None, None),
        };
        ReplanReport {
            baseline_makespan: self.baseline_makespan,
            records: self.records.clone(),
            replans: self.replans,
            final_makespan,
            lower_bound,
            gap,
            evaluations: self.evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{RunResult, Scheduler, Termination};
    use crate::steppable::{Incumbent, SearchStep, StepVerdict};
    use mshc_trace::Trace;
    use std::time::Duration;

    /// A 4-task diamond on 2 machines for freeze/residual tests.
    fn diamond() -> HcInstance {
        let mut b = TaskGraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 2).unwrap();
        b.add_edge(1, 3).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = b.build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            2,
            Matrix::from_rows(&[vec![2.0, 4.0, 3.0, 2.0], vec![3.0, 2.0, 5.0, 4.0]]),
            Matrix::from_rows(&[vec![1.0, 1.0, 1.0, 1.0]]),
        )
        .unwrap();
        HcInstance::new(g, sys).unwrap()
    }

    fn diamond_solution(inst: &HcInstance) -> Solution {
        let segs = vec![
            Segment { task: TaskId::new(0), machine: MachineId::new(0) },
            Segment { task: TaskId::new(1), machine: MachineId::new(1) },
            Segment { task: TaskId::new(2), machine: MachineId::new(0) },
            Segment { task: TaskId::new(3), machine: MachineId::new(0) },
        ];
        Solution::new(inst.graph(), 2, segs).unwrap()
    }

    /// A trivial steppable search that never improves on the injected
    /// incumbent: `result()` returns whatever was injected (or a fresh
    /// random solution before any injection). Lets the replanner tests
    /// exercise the full carryover → inject → result plumbing without
    /// depending on the search crates.
    struct Echo;
    struct EchoState<'i> {
        inst: &'i HcInstance,
        budget: RunBudget,
        best: Option<(Solution, f64)>,
        evaluations: u64,
    }
    impl Scheduler for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn run(
            &mut self,
            inst: &HcInstance,
            budget: &RunBudget,
            trace: Option<&mut Trace>,
        ) -> RunResult {
            crate::steppable::run_stepped(self, inst, budget, trace)
        }
    }
    impl SteppableSearch for Echo {
        fn start<'i>(
            &mut self,
            inst: &'i HcInstance,
            budget: &RunBudget,
        ) -> Box<dyn SearchStep + 'i> {
            Box::new(EchoState { inst, budget: budget.clone(), best: None, evaluations: 0 })
        }
    }
    impl SearchStep for EchoState<'_> {
        fn name(&self) -> &str {
            "echo"
        }
        fn step(&mut self, max_iterations: u64, _trace: Option<&mut Trace>) -> StepVerdict {
            if max_iterations > 0 && self.best.is_none() {
                let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(9);
                let sol = crate::init::random_solution(self.inst, &mut rng);
                let mut eval = Evaluator::new(self.inst);
                let cost = eval.objective_value(&sol, &self.budget.objective);
                self.evaluations += 1;
                self.best = Some((sol, cost));
            }
            StepVerdict::Exhausted
        }
        fn incumbent(&self) -> Option<Incumbent<'_>> {
            self.best.as_ref().map(|(s, c)| Incumbent { solution: s, cost: *c })
        }
        fn inject(&mut self, migrant: &Solution, cost: f64) {
            if self.best.as_ref().is_none_or(|(_, c)| cost < *c) {
                self.best = Some((migrant.clone(), cost));
            }
        }
        fn result(&mut self) -> RunResult {
            let (sol, cost) = self.best.clone().expect("stepped or injected");
            let makespan = Evaluator::new(self.inst).makespan(&sol);
            RunResult {
                solution: sol,
                makespan,
                objective_value: cost,
                iterations: 1,
                evaluations: self.evaluations,
                elapsed: Duration::ZERO,
                scan: Default::default(),
                lower_bound: None,
                gap: None,
                early_stopped: false,
                termination: Termination::Completed,
            }
            .with_certificate(self.inst, self.budget.objective)
        }
    }

    fn fail(machine: u32, time: f64) -> Disturbance {
        Disturbance { kind: DisturbanceKind::MachineFailure, time, machine, factor: 1.0 }
    }

    #[test]
    fn machine_failure_freezes_and_replans() {
        let inst = diamond();
        let sol = diamond_solution(&inst);
        // Schedule: t0 on m0 [0,2), t1 on m1 [3,5) (transfer 1), t2 on
        // m0 [2,5), t3 on m0 [6,8) (waits for t1's transfer).
        let mut rp = Replanner::new(&inst, sol);
        assert!(rp.report().replans == 0);
        let rec = rp.apply(&fail(1, 4.0), &mut Echo, &RunBudget::iterations(1)).unwrap();
        // At t=4: finished = {t0 (2.0)}; t1 (5.0), t2 (5.0), t3 unfinished.
        assert_eq!(rec.committed, 1);
        assert_eq!(rec.residual, 3);
        assert_eq!(rec.survivors, 1);
        assert!(rec.makespan >= 4.0, "disturbed makespan includes the freeze time");
        assert!(rec.gap.expect("makespan objective certifies") >= 1.0);
        assert_eq!(rec.termination, "completed");
        // Carryover cost bounds the replanned cost from above.
        assert!(rec.replanned_cost <= rec.carryover_cost);
        let report = rp.report();
        assert_eq!(report.replans, 1);
        assert_eq!(report.final_makespan, rec.makespan);
        // The surviving machine is m0: every residual task must now be
        // there, and the current solution is on the 1-machine platform.
        assert_eq!(rp.current_solution().machine_count(), 1);
        assert_eq!(rp.current_solution().len(), 3);
    }

    #[test]
    fn slowdown_and_inflation_scale_exec_times() {
        let inst = diamond();
        let sol = diamond_solution(&inst);
        let mut rp = Replanner::new(&inst, sol.clone());
        let d = Disturbance {
            kind: DisturbanceKind::MachineSlowdown,
            time: 1.0,
            machine: 0,
            factor: 2.0,
        };
        let rec = rp.apply(&d, &mut Echo, &RunBudget::iterations(1)).unwrap();
        assert_eq!(rec.survivors, 2, "slowdown keeps every machine");
        assert_eq!(rec.committed, 0, "nothing finished by t=1");
        assert_eq!(rec.residual, 4);

        let mut rp2 = Replanner::new(&inst, sol);
        let d = Disturbance {
            kind: DisturbanceKind::TaskInflation,
            time: 1.0,
            machine: 0,
            factor: 3.0,
        };
        let rec2 = rp2.apply(&d, &mut Echo, &RunBudget::iterations(1)).unwrap();
        assert_eq!(rec2.survivors, 2);
        // Inflating everything 3× dominates slowing one machine 2×.
        assert!(rec2.makespan > rec.makespan);
    }

    #[test]
    fn disturbance_after_completion_is_a_noop() {
        let inst = diamond();
        let sol = diamond_solution(&inst);
        let baseline = Evaluator::new(&inst).makespan(&sol);
        let mut rp = Replanner::new(&inst, sol);
        let rec = rp.apply(&fail(1, 100.0), &mut Echo, &RunBudget::iterations(1)).unwrap();
        assert_eq!(rec.residual, 0);
        assert_eq!(rec.committed, 4);
        assert_eq!(rec.makespan, baseline);
        let report = rp.report();
        assert_eq!(report.replans, 0);
        assert_eq!(report.final_makespan, baseline);
        assert_eq!(report.baseline_makespan, baseline);
    }

    #[test]
    fn sequential_disturbances_compose() {
        // 3 machines so we can fail two of them in sequence.
        let mut b = TaskGraphBuilder::new(3);
        b.add_edge(0, 2).unwrap();
        let g = b.build().unwrap();
        let sys = HcSystem::with_anonymous_machines(
            3,
            Matrix::from_rows(&[vec![2.0, 2.0, 2.0], vec![3.0, 3.0, 3.0], vec![4.0, 4.0, 4.0]]),
            Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]),
        )
        .unwrap();
        let inst = HcInstance::new(g, sys).unwrap();
        let segs = vec![
            Segment { task: TaskId::new(0), machine: MachineId::new(0) },
            Segment { task: TaskId::new(1), machine: MachineId::new(1) },
            Segment { task: TaskId::new(2), machine: MachineId::new(2) },
        ];
        let sol = Solution::new(inst.graph(), 3, segs).unwrap();
        let mut rp = Replanner::new(&inst, sol);
        let budget = RunBudget::iterations(1);
        let r1 = rp.apply(&fail(2, 0.5), &mut Echo, &budget).unwrap();
        assert_eq!(r1.survivors, 2);
        // Second failure names an original id; the replanner maps it
        // through the shrunken platform.
        let r2 = rp.apply(&fail(0, 1.0), &mut Echo, &budget).unwrap();
        assert_eq!(r2.survivors, 1);
        assert!(r2.makespan >= r1.makespan - 1e-9 || r2.residual < r1.residual);
        let report = rp.report();
        assert_eq!(report.replans, 2);
        assert_eq!(report.records.len(), 2);
        // Failing the last machine is rejected.
        assert_eq!(
            rp.apply(&fail(1, 2.0), &mut Echo, &budget),
            Err(ReplanError::NoSurvivors { machine: 1 })
        );
        // Re-failing a dead machine is rejected.
        assert_eq!(
            rp.apply(&fail(0, 2.0), &mut Echo, &budget),
            Err(ReplanError::MachineAlreadyFailed { machine: 0 })
        );
    }

    #[test]
    fn malformed_disturbances_are_rejected() {
        let inst = diamond();
        let mut rp = Replanner::new(&inst, diamond_solution(&inst));
        let budget = RunBudget::iterations(1);
        assert_eq!(
            rp.apply(&fail(9, 1.0), &mut Echo, &budget),
            Err(ReplanError::MachineOutOfRange { machine: 9, machine_count: 2 })
        );
        assert!(matches!(
            rp.apply(&fail(0, f64::NAN), &mut Echo, &budget),
            Err(ReplanError::InvalidTime { time }) if time.is_nan()
        ));
        assert_eq!(
            rp.apply(&fail(0, -1.0), &mut Echo, &budget),
            Err(ReplanError::OutOfOrder { time: -1.0, base: 0.0 })
        );
        let d = Disturbance {
            kind: DisturbanceKind::MachineSlowdown,
            time: 1.0,
            machine: 0,
            factor: 0.0,
        };
        assert_eq!(
            rp.apply(&d, &mut Echo, &budget),
            Err(ReplanError::InvalidFactor { factor: 0.0 })
        );
        // An unbounded replan budget is rejected up front.
        assert_eq!(
            rp.apply(&fail(0, 1.0), &mut Echo, &RunBudget::default()),
            Err(ReplanError::Budget(ScheduleError::UnboundedBudget))
        );
    }

    #[test]
    fn reports_are_deterministic_and_round_trip() {
        let inst = diamond();
        let run = || {
            let mut rp = Replanner::new(&inst, diamond_solution(&inst));
            rp.apply(&fail(1, 4.0), &mut Echo, &RunBudget::iterations(1)).unwrap();
            rp.report()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json(), "byte-identical serialized reports");
        let back = ReplanReport::from_json(&a.to_json()).expect("round trip");
        assert_eq!(back, a);
    }
}
