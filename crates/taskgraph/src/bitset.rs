//! A small fixed-capacity bit set used for reachability/transitive-closure
//! computations.
//!
//! We deliberately hand-roll this rather than pull in `fixedbitset`: the
//! operations needed (set, test, word-wise OR) are tiny, and keeping the
//! dependency set to the sanctioned list matters more than reuse here.

/// A fixed-capacity set of small integers backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    bits: Box<[u64]>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        let words = capacity.div_ceil(64);
        BitSet { bits: vec![0u64; words].into_boxed_slice(), capacity }
    }

    /// Number of values the set can hold (`0..capacity`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `value`. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `value >= capacity`.
    #[inline]
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(value < self.capacity, "bitset value out of range");
        let word = value / 64;
        let mask = 1u64 << (value % 64);
        let was = self.bits[word] & mask != 0;
        self.bits[word] |= mask;
        !was
    }

    /// Removes `value`. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, value: usize) -> bool {
        assert!(value < self.capacity, "bitset value out of range");
        let word = value / 64;
        let mask = 1u64 << (value % 64);
        let was = self.bits[word] & mask != 0;
        self.bits[word] &= !mask;
        was
    }

    /// Tests membership.
    #[inline]
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        self.bits[value / 64] & (1u64 << (value % 64)) != 0
    }

    /// In-place union: `self |= other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
    }

    /// Number of elements currently in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Iterates over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports false");
        assert!(s.contains(0));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    fn remove() {
        let mut s = BitSet::new(70);
        s.insert(65);
        assert!(s.remove(65));
        assert!(!s.remove(65));
        assert!(s.is_empty());
    }

    #[test]
    fn union() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(99);
        b.insert(1);
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 99]);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn union_capacity_mismatch_panics() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(20);
        a.union_with(&b);
    }

    #[test]
    fn iter_order_and_clear() {
        let mut s = BitSet::new(200);
        for v in [5usize, 63, 64, 127, 128, 199] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 63, 64, 127, 128, 199]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(8).insert(8);
    }
}
