//! Certificate soundness across the whole portfolio: the certified
//! instance lower bound may never exceed the makespan of any feasible
//! schedule any algorithm produces — otherwise the "certificate" would
//! disprove itself. Random workloads exercise the deflated float path;
//! a targeted integer-fraction case pins the accumulation-rounding edge
//! where a naive `work / machines` bound over-estimates.

use mshc_platform::{HcInstance, HcSystem, Matrix};
use mshc_portfolio::{build_contestant, ALGORITHMS};
use mshc_schedule::{InstanceBound, RunBudget};
use mshc_taskgraph::TaskGraphBuilder;
use mshc_workloads::{Connectivity, Heterogeneity, WorkloadSpec};
use proptest::prelude::*;

/// Runs every algorithm on `inst` and asserts its certificate never
/// over-bounds the schedule it actually returned.
fn assert_floor_below_every_makespan(inst: &HcInstance, seed: u64, iterations: u64) {
    let bound = InstanceBound::compute(inst);
    let budget = RunBudget::iterations(iterations);
    for name in ALGORITHMS {
        let result = build_contestant(name, seed).expect("known algorithm").run(inst, &budget);
        result.solution.check(inst.graph()).expect("feasible schedule");
        assert!(
            bound.floor() <= result.makespan,
            "{name}: certified floor {} exceeds achieved makespan {} — the bound over-estimates",
            bound.floor(),
            result.makespan
        );
        assert_eq!(result.lower_bound, Some(bound.floor()), "{name}: certificate mismatch");
        let gap = result.gap.expect("makespan run carries a gap");
        assert!(gap >= 1.0, "{name}: certified gap {gap} below 1");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random float workloads (the deflated-bound path): no algorithm's
    /// schedule may ever beat the certified floor.
    #[test]
    fn certified_floor_never_exceeds_any_algorithms_makespan(
        tasks in 1usize..24,
        machines in 1usize..6,
        ccr in 0.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let inst = WorkloadSpec {
            tasks,
            machines,
            connectivity: Connectivity::Medium,
            heterogeneity: Heterogeneity::High,
            ccr,
            seed,
        }
        .generate();
        assert_floor_below_every_makespan(&inst, seed, 6);
    }
}

#[test]
fn float_accumulation_edge_does_not_over_bound() {
    // 3 independent tasks of 0.1 on 3 machines: the perfect split has
    // makespan exactly 0.1, but the naive aggregate bound
    // (0.1 + 0.1 + 0.1) / 3 = 0.10000000000000002 sits one ulp above
    // it. The deflated floor must stay at or below the achievable 0.1.
    let g = TaskGraphBuilder::new(3).build().unwrap();
    let exec = Matrix::filled(3, 3, 0.1);
    let sys = HcSystem::with_anonymous_machines(3, exec, Matrix::filled(3, 0, 0.0)).unwrap();
    let inst = HcInstance::new(g, sys).unwrap();
    let bound = InstanceBound::compute(&inst);
    assert!(
        bound.floor() <= 0.1,
        "deflation failed: floor {} exceeds the achievable makespan 0.1",
        bound.floor()
    );
    assert!(bound.floor() > 0.09, "floor collapsed far below the work bound");
    assert_floor_below_every_makespan(&inst, 7, 12);
}
