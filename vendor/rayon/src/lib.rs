//! Hermetic stand-in for `rayon`.
//!
//! The offline build vendors the subset of rayon's API the suite uses
//! (`par_iter`, `map_init`, `join`) with **sequential** execution. Every
//! "parallel" iterator here is an ordinary [`Iterator`], so downstream
//! combinators (`enumerate`, `map`, `min_by`, `collect`, ...) come from
//! the standard library. Replacing this crate with the real rayon is a
//! manifest-only change — call sites compile unmodified either way.
//!
//! **Caveat while this shim is in use:** determinism tests that compare
//! a `parallel_*` code path against its serial twin (e.g.
//! `mshc-core`'s `parallel_allocation_matches_serial`) are vacuous —
//! both paths execute sequentially here, so they cannot catch
//! order-dependent reductions. Re-check those tests when swapping the
//! real rayon back in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Run two closures and return both results (sequentially, `a` first).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Borrowing conversion into a "parallel" iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// The item type produced.
    type Item: 'a;

    /// Iterate the collection "in parallel" (sequentially here).
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> std::slice::Iter<'a, T> {
        self.iter()
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> std::slice::Iter<'a, T> {
        self.iter()
    }
}

/// Owning conversion into a "parallel" iterator (`.into_par_iter()`).
pub trait IntoParallelIterator {
    /// The iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// The item type produced.
    type Item;

    /// Consume the collection into a "parallel" iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;

    fn into_par_iter(self) -> I::IntoIter {
        self.into_iter()
    }
}

/// rayon-only iterator adaptors, grafted onto every [`Iterator`].
pub trait ParallelIterator: Iterator + Sized {
    /// Map with per-"thread" scratch state. Sequential execution means a
    /// single `init()` call whose value is threaded through every item.
    fn map_init<St, Init, F, R>(self, init: Init, f: F) -> MapInit<Self, St, F>
    where
        Init: FnOnce() -> St,
        F: FnMut(&mut St, Self::Item) -> R,
    {
        MapInit { iter: self, state: init(), f }
    }

    /// rayon's `with_min_len` splitting hint: a no-op here.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

impl<I: Iterator> ParallelIterator for I {}

/// Iterator returned by [`ParallelIterator::map_init`].
pub struct MapInit<I, St, F> {
    iter: I,
    state: St,
    f: F,
}

impl<I, St, F, R> Iterator for MapInit<I, St, F>
where
    I: Iterator,
    F: FnMut(&mut St, I::Item) -> R,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        let item = self.iter.next()?;
        Some((self.f)(&mut self.state, item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

/// The glob-import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_init_matches_sequential() {
        let xs = vec![1u32, 2, 3, 4];
        let out: Vec<u64> = xs
            .par_iter()
            .enumerate()
            .map_init(
                || 10u64,
                |acc, (i, &x)| {
                    *acc += 1;
                    *acc + i as u64 + x as u64
                },
            )
            .collect();
        assert_eq!(out, vec![12, 15, 18, 21]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
