//! Flattened, cache-friendly instance snapshot for the hot evaluation
//! path.
//!
//! [`HcInstance`] is the validated, serializable source of truth, but its
//! representation pays for generality on every lookup: `in_edges` chases
//! through boxed CSR arrays *and* materializes [`DataEdge`] values,
//! `exec_time`/`transfer_time` go through [`Matrix`] accessors, and
//! `transfer_time` re-derives the pair row each call. The evaluator runs
//! these lookups millions of times per SE run (§4.5 evaluates thousands
//! of candidate strings per iteration), so [`EvalSnapshot`] flattens
//! everything once into dense structure-of-arrays form:
//!
//! * predecessor CSR — `(src task, data item)` pairs per task, in the
//!   exact order `TaskGraph::in_edges` yields them (the evaluator's f64
//!   reduction order, and therefore its bit-exact results, depend on it);
//! * the execution matrix `E` as one `l × k` row-major slab;
//! * the transfer matrix `Tr` as one `l(l-1)/2 × p` row-major slab.
//!
//! A snapshot is plain owned data (`Send + Sync`), so one snapshot can be
//! shared by any number of worker-thread evaluators — this is what
//! [`crate::BatchEvaluator`] fans out over.
//!
//! [`Matrix`]: mshc_platform::Matrix
//! [`DataEdge`]: mshc_taskgraph::DataEdge

use mshc_platform::{pair_count, pair_index, HcInstance, MachineId};
use mshc_taskgraph::{DataId, TaskId};

/// Dense, immutable copy of everything the evaluator reads per pass.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSnapshot {
    k: usize,
    l: usize,
    p: usize,
    /// CSR offsets into `pred_src`/`pred_data`, indexed by task (`k + 1`).
    pred_offsets: Vec<u32>,
    /// Producing task per incoming edge, grouped by consumer.
    pred_src: Vec<u32>,
    /// Data item per incoming edge, grouped by consumer.
    pred_data: Vec<u32>,
    /// `E` as a row-major `l × k` slab: `exec[m * k + t]`.
    exec: Vec<f64>,
    /// `Tr` as a row-major `l(l-1)/2 × p` slab: `transfer[pair * p + d]`.
    transfer: Vec<f64>,
}

impl EvalSnapshot {
    /// Flattens `inst` into a snapshot. O(l·k + l²·p) one-time cost.
    pub fn new(inst: &HcInstance) -> EvalSnapshot {
        let g = inst.graph();
        let sys = inst.system();
        let (k, l, p) = (inst.task_count(), inst.machine_count(), inst.data_count());

        let mut pred_offsets = Vec::with_capacity(k + 1);
        let mut pred_src = Vec::with_capacity(p);
        let mut pred_data = Vec::with_capacity(p);
        pred_offsets.push(0u32);
        for t in g.tasks() {
            for e in g.in_edges(t) {
                pred_src.push(e.src.raw());
                pred_data.push(e.id.raw());
            }
            pred_offsets.push(pred_src.len() as u32);
        }

        let mut exec = Vec::with_capacity(l * k);
        for m in 0..l {
            for t in 0..k {
                exec.push(sys.exec_matrix().get(m, t));
            }
        }
        let pairs = pair_count(l);
        let mut transfer = Vec::with_capacity(pairs * p);
        for pair in 0..pairs {
            for d in 0..p {
                transfer.push(sys.transfer_matrix().get(pair, d));
            }
        }

        EvalSnapshot { k, l, p, pred_offsets, pred_src, pred_data, exec, transfer }
    }

    /// Number of subtasks `k`.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.k
    }

    /// Number of machines `l`.
    #[inline]
    pub fn machine_count(&self) -> usize {
        self.l
    }

    /// Number of data items `p`.
    #[inline]
    pub fn data_count(&self) -> usize {
        self.p
    }

    /// `E[m][t]`: execution time of task `t` on machine `m`.
    #[inline]
    pub fn exec_time(&self, m: MachineId, t: TaskId) -> f64 {
        self.exec[m.index() * self.k + t.index()]
    }

    /// Time to move data item `d` between machines; zero when co-located.
    #[inline]
    pub fn transfer_time(&self, d: DataId, from: MachineId, to: MachineId) -> f64 {
        if from == to {
            0.0
        } else {
            self.transfer[pair_index(self.l, from, to) * self.p + d.index()]
        }
    }

    /// Incoming `(producer, data item)` pairs of `t`, in the same order
    /// `TaskGraph::in_edges` yields them.
    #[inline]
    pub fn preds(&self, t: TaskId) -> impl ExactSizeIterator<Item = (TaskId, DataId)> + Clone + '_ {
        let lo = self.pred_offsets[t.index()] as usize;
        let hi = self.pred_offsets[t.index() + 1] as usize;
        (lo..hi).map(move |i| (TaskId::new(self.pred_src[i]), DataId::new(self.pred_data[i])))
    }

    /// One step of the left-to-right scheduling kernel: the
    /// `(start, finish)` times of task `t` placed on machine `m` with
    /// execution time `exec`, given the predecessor finish times, a
    /// machine lookup for producers, and the machine-availability
    /// frontier.
    ///
    /// Every evaluation tier — the scalar full pass, the incremental
    /// evaluator's priming walk, and its checkpoint-resumed suffix
    /// replay — goes through this single definition. The bit-identity
    /// guarantee across tiers rests on these float operations happening
    /// in exactly this order; do not duplicate or reorder them.
    #[inline]
    pub(crate) fn schedule_step(
        &self,
        t: TaskId,
        m: MachineId,
        exec: f64,
        machine_of: impl Fn(TaskId) -> MachineId,
        finish: &[f64],
        machine_avail: &[f64],
    ) -> (f64, f64) {
        // Data-arrival constraint: every input item must have arrived.
        let mut ready = 0.0f64;
        for (src, d) in self.preds(t) {
            let arrival = finish[src.index()] + self.transfer_time(d, machine_of(src), m);
            ready = ready.max(arrival);
        }
        // Machine-order constraint: the machine must be free.
        let start = ready.max(machine_avail[m.index()]);
        (start, start + exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_taskgraph::TaskGraphBuilder;

    fn instance() -> HcInstance {
        let mut b = TaskGraphBuilder::new(4);
        for (s, d) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(s, d).unwrap();
        }
        let g = b.build().unwrap();
        let exec = Matrix::from_fn(3, 4, |m, t| (m * 10 + t + 1) as f64);
        let transfer = Matrix::from_fn(3, 4, |pair, d| (pair * 100 + d) as f64);
        let sys = HcSystem::with_anonymous_machines(3, exec, transfer).unwrap();
        HcInstance::new(g, sys).unwrap()
    }

    #[test]
    fn dimensions_and_lookups_match_instance() {
        let inst = instance();
        let snap = EvalSnapshot::new(&inst);
        assert_eq!(snap.task_count(), 4);
        assert_eq!(snap.machine_count(), 3);
        assert_eq!(snap.data_count(), 4);
        let sys = inst.system();
        for m in sys.machine_ids() {
            for t in inst.graph().tasks() {
                assert_eq!(snap.exec_time(m, t), sys.exec_time(m, t));
            }
        }
        for d in inst.graph().edges().iter().map(|e| e.id) {
            for a in sys.machine_ids() {
                for b in sys.machine_ids() {
                    assert_eq!(snap.transfer_time(d, a, b), sys.transfer_time(d, a, b));
                }
            }
        }
    }

    #[test]
    fn preds_match_in_edges_order() {
        let inst = instance();
        let snap = EvalSnapshot::new(&inst);
        for t in inst.graph().tasks() {
            let want: Vec<(TaskId, DataId)> =
                inst.graph().in_edges(t).map(|e| (e.src, e.id)).collect();
            let got: Vec<(TaskId, DataId)> = snap.preds(t).collect();
            assert_eq!(got, want, "{t}");
        }
    }

    #[test]
    fn colocated_transfer_is_zero() {
        let inst = instance();
        let snap = EvalSnapshot::new(&inst);
        let d = DataId::new(0);
        let m = MachineId::new(1);
        assert_eq!(snap.transfer_time(d, m, m), 0.0);
    }
}
