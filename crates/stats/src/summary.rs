//! Batch summaries of f64 samples.

/// Descriptive statistics of a non-empty sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n = 1).
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (mean of middle two for even n).
    pub median: f64,
}

impl Summary {
    /// Summarizes `samples`.
    ///
    /// # Panics
    /// Panics on an empty slice or non-finite samples.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        assert!(samples.iter().all(|v| v.is_finite()), "samples must be finite");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median =
            if n % 2 == 1 { sorted[n / 2] } else { (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0 };
        Summary { n, mean, std: var.sqrt(), min: sorted[0], max: sorted[n - 1], median }
    }

    /// Half-width of the ~95% confidence interval on the mean
    /// (normal approximation, `1.96 * std / sqrt(n)`).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.std / (self.n as f64).sqrt()
    }

    /// `p`-th percentile (0–100, nearest-rank).
    pub fn percentile(samples: &[f64], p: f64) -> f64 {
        assert!(!samples.is_empty(), "empty sample");
        assert!((0.0..=100.0).contains(&p), "percentile in 0..=100");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // sample std of that classic sample is sqrt(32/7)
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 3.5);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn odd_median() {
        let s = Summary::of(&[9.0, 1.0, 5.0]);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let few = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = (0..100).map(|i| 1.0 + (i % 4) as f64).collect();
        let many = Summary::of(&many);
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(Summary::percentile(&v, 0.0), 0.0);
        assert_eq!(Summary::percentile(&v, 50.0), 50.0);
        assert_eq!(Summary::percentile(&v, 100.0), 100.0);
        assert_eq!(Summary::percentile(&v, 95.0), 95.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }
}
