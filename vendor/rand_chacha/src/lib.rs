//! Hermetic stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator implementing the vendored [`rand`] traits.
//!
//! The keystream is real ChaCha with 8 double-rounds, keyed by the
//! 32-byte seed, so streams are deterministic, high-quality and stable
//! across platforms. The word-consumption order is **not** guaranteed to
//! match the upstream `rand_chacha` crate — seeds are reproducible within
//! this workspace, which is all the suite relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 double-rounds, exposed as a deterministic RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state rows 1–2 of the ChaCha matrix).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    index: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.block.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng { key, counter: 0, block: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
