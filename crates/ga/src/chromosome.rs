//! The two-string chromosome and its validity-preserving operators.

use mshc_platform::{HcInstance, MachineId};
use mshc_schedule::Solution;
use mshc_taskgraph::{TaskGraph, TaskId, TopoOrder};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One GA individual: a matching string plus a scheduling string.
///
/// Invariant: `order` is a linear extension of the instance DAG and
/// `matching[t]` is a valid machine for every task. All constructors and
/// operators preserve it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chromosome {
    /// Scheduling string: a topological order of all tasks.
    pub order: Vec<TaskId>,
    /// Matching string: `matching[t.index()]` = machine of task `t`.
    pub matching: Vec<MachineId>,
}

impl Chromosome {
    /// Uniformly random valid chromosome.
    pub fn random<R: Rng + ?Sized>(inst: &HcInstance, rng: &mut R) -> Chromosome {
        let order = TopoOrder::random(inst.graph(), rng).into_vec();
        let l = inst.machine_count();
        let matching =
            (0..inst.task_count()).map(|_| MachineId::from_usize(rng.gen_range(0..l))).collect();
        Chromosome { order, matching }
    }

    /// The non-evolutionary seed chromosome: deterministic topological
    /// order with every task on its best-matching machine.
    pub fn seeded(inst: &HcInstance) -> Chromosome {
        let order = TopoOrder::kahn(inst.graph()).into_vec();
        let matching = inst.graph().tasks().map(|t| inst.system().best_machine(t)).collect();
        Chromosome { order, matching }
    }

    /// Converts to the combined-string [`Solution`] for evaluation.
    pub fn to_solution(&self, inst: &HcInstance) -> Solution {
        Solution::from_order(inst.graph(), inst.machine_count(), &self.order, &self.matching)
            .expect("chromosome invariant: valid order + in-range machines")
    }

    /// Splits a combined-string [`Solution`] back into the two-string
    /// representation — the inverse of [`to_solution`](Self::to_solution).
    /// Used to adopt migrant solutions from other algorithms in
    /// portfolio (incumbent-exchange) runs; a valid solution string is a
    /// linear extension, so the chromosome invariant holds.
    pub fn from_solution(sol: &Solution) -> Chromosome {
        let order: Vec<TaskId> = sol.order().collect();
        let mut matching = vec![MachineId::from_usize(0); sol.len()];
        for seg in sol.segments() {
            matching[seg.task.index()] = seg.machine;
        }
        Chromosome { order, matching }
    }

    /// Scheduling-string crossover: keep `self`'s prefix up to `cut`
    /// (exclusive), then append the tasks missing from the prefix in the
    /// order they occur in `other`. If both parents are linear extensions
    /// the child is too.
    pub fn crossover_order(&self, other: &Chromosome, cut: usize) -> Vec<TaskId> {
        debug_assert!(cut <= self.order.len());
        let mut in_prefix = vec![false; self.order.len()];
        let mut child = Vec::with_capacity(self.order.len());
        for &t in &self.order[..cut] {
            in_prefix[t.index()] = true;
            child.push(t);
        }
        for &t in &other.order {
            if !in_prefix[t.index()] {
                child.push(t);
            }
        }
        child
    }

    /// Matching-string single-point crossover: machines for tasks with
    /// index `< cut` come from `self`, the rest from `other`. (Indexed by
    /// task id, as in the reference implementation.)
    pub fn crossover_matching(&self, other: &Chromosome, cut: usize) -> Vec<MachineId> {
        debug_assert!(cut <= self.matching.len());
        let mut child = self.matching.clone();
        child[cut..].copy_from_slice(&other.matching[cut..]);
        child
    }

    /// Scheduling mutation: move task `t` to position `new_pos` within its
    /// valid range in the order. Returns `false` (and leaves the order
    /// unchanged) if `new_pos` is outside the range.
    pub fn mutate_order(&mut self, graph: &TaskGraph, t: TaskId, new_pos: usize) -> bool {
        let (lo, hi) = order_valid_range(graph, &self.order, t);
        if new_pos < lo || new_pos > hi {
            return false;
        }
        let old = self.order.iter().position(|&x| x == t).expect("task present");
        self.order.remove(old);
        self.order.insert(new_pos, t);
        true
    }

    /// Matching mutation: assign `t` to `machine`.
    pub fn mutate_matching(&mut self, t: TaskId, machine: MachineId) {
        self.matching[t.index()] = machine;
    }

    /// Validity check used by tests.
    pub fn check(&self, inst: &HcInstance) -> bool {
        inst.graph().is_linear_extension(&self.order)
            && self.matching.len() == inst.task_count()
            && self.matching.iter().all(|m| m.index() < inst.machine_count())
    }
}

/// Valid insertion range of `t` inside a bare task order (same semantics
/// as [`Solution::valid_range`], but without machines).
pub fn order_valid_range(graph: &TaskGraph, order: &[TaskId], t: TaskId) -> (usize, usize) {
    let mut pos = vec![0u32; order.len()];
    for (i, &x) in order.iter().enumerate() {
        pos[x.index()] = i as u32;
    }
    let mut lo = 0usize;
    for p in graph.predecessors(t) {
        lo = lo.max(pos[p.index()] as usize + 1);
    }
    let mut hi = order.len() - 1;
    for s in graph.successors(t) {
        hi = hi.min((pos[s.index()] as usize).saturating_sub(1));
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mshc_platform::{HcSystem, Matrix};
    use mshc_taskgraph::TaskGraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn instance() -> HcInstance {
        let mut b = TaskGraphBuilder::new(7);
        for (s, d) in [(0, 2), (0, 3), (1, 4), (2, 5), (3, 5), (4, 6)] {
            b.add_edge(s, d).unwrap();
        }
        let g = b.build().unwrap();
        let exec = Matrix::from_rows(&[
            vec![400.0, 700.0, 500.0, 300.0, 800.0, 600.0, 200.0],
            vec![600.0, 500.0, 400.0, 900.0, 435.0, 450.0, 350.0],
        ]);
        let transfer = Matrix::from_rows(&[vec![120.0, 80.0, 200.0, 60.0, 90.0, 150.0]]);
        let sys = HcSystem::with_anonymous_machines(2, exec, transfer).unwrap();
        HcInstance::new(g, sys).unwrap()
    }

    #[test]
    fn random_chromosomes_valid() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let c = Chromosome::random(&inst, &mut rng);
            assert!(c.check(&inst));
            let s = c.to_solution(&inst);
            s.check(inst.graph()).unwrap();
        }
    }

    #[test]
    fn seeded_chromosome_uses_best_machines() {
        let inst = instance();
        let c = Chromosome::seeded(&inst);
        assert!(c.check(&inst));
        for t in inst.graph().tasks() {
            assert_eq!(c.matching[t.index()], inst.system().best_machine(t));
        }
    }

    #[test]
    fn order_crossover_preserves_validity() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..200 {
            let a = Chromosome::random(&inst, &mut rng);
            let b = Chromosome::random(&inst, &mut rng);
            let cut = rng.gen_range(0..=7);
            let child_order = a.crossover_order(&b, cut);
            assert!(
                inst.graph().is_linear_extension(&child_order),
                "cut {cut}: {child_order:?} from {:?} x {:?}",
                a.order,
                b.order
            );
        }
    }

    #[test]
    fn order_crossover_extremes() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a = Chromosome::random(&inst, &mut rng);
        let b = Chromosome::random(&inst, &mut rng);
        assert_eq!(a.crossover_order(&b, 7), a.order, "full cut copies parent A");
        assert_eq!(a.crossover_order(&b, 0), b.order, "empty cut copies parent B");
    }

    #[test]
    fn matching_crossover_mixes() {
        let inst = instance();
        let mut a = Chromosome::seeded(&inst);
        let mut b = Chromosome::seeded(&inst);
        a.matching = vec![MachineId::new(0); 7];
        b.matching = vec![MachineId::new(1); 7];
        let child = a.crossover_matching(&b, 3);
        assert_eq!(child[..3], vec![MachineId::new(0); 3][..]);
        assert_eq!(child[3..], vec![MachineId::new(1); 4][..]);
    }

    #[test]
    fn mutate_order_respects_range() {
        let inst = instance();
        let mut c = Chromosome::seeded(&inst); // order 0..7

        // s4: pred s1@1, succ s6@6 => range [2,5]
        assert!(!c.mutate_order(inst.graph(), TaskId::new(4), 1));
        assert!(c.mutate_order(inst.graph(), TaskId::new(4), 2));
        assert!(inst.graph().is_linear_extension(&c.order));
        assert_eq!(c.order[2], TaskId::new(4));
    }

    #[test]
    fn mutate_matching_sets_machine() {
        let inst = instance();
        let mut c = Chromosome::seeded(&inst);
        c.mutate_matching(TaskId::new(3), MachineId::new(1));
        assert_eq!(c.matching[3], MachineId::new(1));
        assert!(c.check(&inst));
    }

    #[test]
    fn mutation_stress_preserves_validity() {
        let inst = instance();
        let g = inst.graph();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut c = Chromosome::random(&inst, &mut rng);
        for _ in 0..500 {
            let t = TaskId::new(rng.gen_range(0..7));
            let (lo, hi) = order_valid_range(g, &c.order, t);
            let pos = rng.gen_range(lo..=hi);
            assert!(c.mutate_order(g, t, pos));
            c.mutate_matching(
                TaskId::new(rng.gen_range(0..7)),
                MachineId::new(rng.gen_range(0..2)),
            );
            assert!(c.check(&inst));
        }
    }
}
