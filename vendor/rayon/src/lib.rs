//! Hermetic stand-in for `rayon` with **real** thread parallelism on a
//! **persistent, work-stealing thread pool**.
//!
//! The offline build vendors the subset of rayon's API the suite uses
//! (`par_iter`, `map`, `map_init`, `enumerate`, `min_by`, `collect`,
//! `join`, ...). Since PR 7 the executor is resident: a crew of worker
//! threads is spawned once at first use (honoring `RAYON_NUM_THREADS`
//! and [`ThreadPoolBuilder::build_global`]) and every parallel operation
//! is submitted to it — no per-call `std::thread::scope` spawn/join, so
//! short scans (the common case once bound pruning has cut 99%+ of the
//! candidates) no longer pay thread start-up latency.
//!
//! # Execution model
//!
//! An input of `n` indexed items is split into contiguous chunks; the
//! chunk grid is a **pure function of `(n, min_len, effective thread
//! count)`** — never of the scheduler. The submitting thread publishes
//! one *ticket* per engaged worker onto the per-worker deques (workers
//! pop their own deque LIFO, steal from others FIFO) and then works the
//! operation itself. A ticket does not name a chunk: chunks are claimed
//! one at a time from the operation's atomic claim counter, so whichever
//! threads show up — woken workers, stealing workers, or just the
//! submitter — drain the same chunk list. Per-chunk results are merged
//! back **in chunk order** after a completion latch.
//!
//! # Why stealing cannot change bits
//!
//! Determinism needs exactly three properties, all independent of
//! scheduling:
//!
//! 1. the chunk grid depends only on `(n, min_len, effective size)`;
//! 2. each chunk's result depends only on its index range (per-chunk
//!    `map_init` state is scratch, recreated wherever the chunk runs);
//! 3. chunk results are merged in chunk-index order, sequentially.
//!
//! Which worker claims a chunk, in what order chunks finish, and whether
//! a ticket was stolen are all unobservable — the merged output is
//! bit-identical at any thread count, stolen or not. The
//! steal-determinism property tests in `mshc-schedule` pin this down
//! with induced per-chunk delays.
//!
//! Pool sizing, most specific wins:
//!
//! 1. a [`ThreadPool::install`] scope on the calling thread (nested
//!    operations started from inside a pool job inherit the job's
//!    effective size, like real rayon);
//! 2. the process-wide size set by [`ThreadPoolBuilder::build_global`];
//! 3. the `RAYON_NUM_THREADS` environment variable;
//! 4. [`std::thread::available_parallelism`].
//!
//! With an effective size of 1 everything runs inline on the calling
//! thread with zero submission overhead. Workers are identified by a
//! stable index ([`current_thread_index`]) so callers can pin per-worker
//! state (e.g. `mshc-schedule`'s evaluator arenas) across operations.
//! Replacing this crate with the real rayon is a manifest-only change —
//! call sites compile unmodified.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering the data on poison. Every lock in this
/// crate guards state that stays structurally valid across a panicking
/// job (counters, queues, result vectors that are discarded on unwind),
/// so poison never needs to cascade into healthy operations.
fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Pool sizing
// ---------------------------------------------------------------------------

/// Process-wide pool size set by `build_global` (0 = unset).
static GLOBAL_POOL_SIZE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`] — or, on
    /// a worker, propagated from the operation being executed so nested
    /// parallel calls inherit the submitter's effective size (0 = none).
    static INSTALLED_POOL_SIZE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The number of worker threads parallel operations on this thread use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_POOL_SIZE.with(std::cell::Cell::get);
    if installed > 0 {
        return installed;
    }
    let global = GLOBAL_POOL_SIZE.load(AtomicOrdering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Ok(raw) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Sets this thread's size override and returns the previous value.
fn set_installed_size(size: usize) -> usize {
    INSTALLED_POOL_SIZE.with(|c| c.replace(size))
}

/// Restores a previous [`set_installed_size`] value on drop, so the
/// override cannot leak past a panic.
struct RestoreSize(usize);

impl Drop for RestoreSize {
    fn drop(&mut self) {
        set_installed_size(self.0);
    }
}

/// The stable index of the resident worker running the current thread,
/// or `None` off the pool (the main thread, test harness threads, ...).
/// Indices are assigned at spawn and never reused, so per-worker state
/// pinned to them survives across operations.
pub fn current_thread_index() -> Option<usize> {
    pool::WORKER_INDEX.with(std::cell::Cell::get)
}

/// Error building a thread pool (shape-compatible with rayon's).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
///
/// `num_threads(0)` (the default) means "derive from the environment".
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with environment-derived sizing.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Builds a pool handle; run closures under its size with
    /// [`ThreadPool::install`]. The handle is a sized view of the one
    /// resident crew — workers are shared, never duplicated.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let size = if self.num_threads > 0 { self.num_threads } else { current_num_threads() };
        Ok(ThreadPool { size })
    }

    /// Sets the process-wide pool size. Unlike real rayon, calling this
    /// twice simply overwrites the size instead of erroring — the
    /// resident crew grows lazily to whatever operations request.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let size = if self.num_threads > 0 { self.num_threads } else { current_num_threads() };
        GLOBAL_POOL_SIZE.store(size, AtomicOrdering::Relaxed);
        Ok(())
    }
}

/// A sized view of the resident pool. `install` scopes the effective
/// parallelism to a closure; the worker crew itself is process-wide and
/// persistent, so "building" a pool allocates nothing.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    size: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.size
    }

    /// Runs `op` with this pool's size governing every parallel
    /// operation started from the calling thread inside `op`.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let _restore = RestoreSize(set_installed_size(self.size));
        op()
    }
}

// ---------------------------------------------------------------------------
// The resident work-stealing pool
// ---------------------------------------------------------------------------

mod pool {
    //! The persistent crew and the one `unsafe` corner of the crate.
    //!
    //! Workers are `'static` threads, but parallel operations borrow
    //! non-`'static` state from the submitting thread's stack (the chunk
    //! runner closure and its result sink). The bridge is a
    //! lifetime-erased pointer inside [`Operation`]; soundness rests on
    //! the completion latch:
    //!
    //! * a chunk may only be claimed while `next < num_chunks`, and the
    //!   runner pointer is only dereferenced for a claimed chunk;
    //! * `completed` reaches `num_chunks` only after every claimed
    //!   chunk's runner call has returned;
    //! * the submitter blocks in [`Operation::wait`] until then, so the
    //!   borrowed closure outlives every dereference. After the latch
    //!   trips, stale tickets touch only the `Arc<Operation>` itself
    //!   (atomics), never the pointer.
    #![allow(unsafe_code)]

    use super::lock_tolerant;
    use std::any::Any;
    use std::collections::VecDeque;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    thread_local! {
        /// Stable identity of the resident worker on this thread.
        pub(super) static WORKER_INDEX: std::cell::Cell<Option<usize>> =
            const { std::cell::Cell::new(None) };
    }

    /// Pool telemetry: monotonic relaxed counters bumped at scheduling
    /// events. Purely observational — a counter increment can neither
    /// reorder chunk claims nor change which worker runs a chunk, and
    /// every consumer above merges chunk results in chunk-index order,
    /// so telemetry can never influence results. All counts are
    /// scheduling diagnostics (steal totals and queue depths vary run
    /// to run even at a fixed thread count); exposed through
    /// [`super::pool_stats`].
    pub(super) mod stats {
        use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

        /// Parallel operations submitted to the crew.
        pub(super) static OPS_SUBMITTED: AtomicU64 = AtomicU64::new(0);
        /// Chunks successfully claimed (one per executed chunk).
        pub(super) static CHUNK_CLAIMS: AtomicU64 = AtomicU64::new(0);
        /// Tickets taken from *another* worker's deque front.
        pub(super) static STEALS: AtomicU64 = AtomicU64::new(0);
        /// Wake-epoch bumps (one per submission that published tickets).
        pub(super) static WAKE_EPOCHS: AtomicU64 = AtomicU64::new(0);
        /// Deepest ticket deque observed right after a publish.
        pub(super) static QUEUE_DEPTH_HWM: AtomicU64 = AtomicU64::new(0);
        /// Chunks executed per worker index (slot `TRACKED` aggregates
        /// non-worker threads — submitters claiming their own chunks —
        /// and any worker past the tracked window).
        pub(super) const TRACKED: usize = 64;
        pub(super) static PER_WORKER_CHUNKS: [AtomicU64; TRACKED + 1] =
            [const { AtomicU64::new(0) }; TRACKED + 1];

        /// Records one successful chunk claim by the current thread.
        #[inline]
        pub(super) fn note_chunk_claim() {
            CHUNK_CLAIMS.fetch_add(1, Relaxed);
            let slot = super::WORKER_INDEX
                .with(std::cell::Cell::get)
                .filter(|&i| i < TRACKED)
                .unwrap_or(TRACKED);
            PER_WORKER_CHUNKS[slot].fetch_add(1, Relaxed);
        }

        /// Folds an observed deque depth into the high-water mark.
        #[inline]
        pub(super) fn note_queue_depth(depth: usize) {
            QUEUE_DEPTH_HWM.fetch_max(depth as u64, Relaxed);
        }

        /// Zeroes every counter (bench/CLI probes reset between phases).
        pub(super) fn reset() {
            OPS_SUBMITTED.store(0, Relaxed);
            CHUNK_CLAIMS.store(0, Relaxed);
            STEALS.store(0, Relaxed);
            WAKE_EPOCHS.store(0, Relaxed);
            QUEUE_DEPTH_HWM.store(0, Relaxed);
            for slot in &PER_WORKER_CHUNKS {
                slot.store(0, Relaxed);
            }
        }
    }

    /// Zeroes the telemetry counters for [`super::reset_pool_stats`].
    pub(super) fn reset_stats() {
        stats::reset()
    }

    /// Snapshot of the telemetry counters for [`super::pool_stats`].
    pub(super) fn stats_snapshot() -> super::PoolStats {
        use std::sync::atomic::Ordering::Relaxed;
        let workers = spawned_workers().min(stats::TRACKED);
        super::PoolStats {
            ops_submitted: stats::OPS_SUBMITTED.load(Relaxed),
            chunk_claims: stats::CHUNK_CLAIMS.load(Relaxed),
            steals: stats::STEALS.load(Relaxed),
            wake_epochs: stats::WAKE_EPOCHS.load(Relaxed),
            queue_depth_hwm: stats::QUEUE_DEPTH_HWM.load(Relaxed),
            per_worker_chunks: stats::PER_WORKER_CHUNKS[..workers]
                .iter()
                .map(|c| c.load(Relaxed))
                .collect(),
            foreign_chunks: stats::PER_WORKER_CHUNKS[stats::TRACKED].load(Relaxed),
        }
    }

    /// One parallel operation: a borrowed chunk runner plus the claim
    /// counter and completion latch that make handing it to `'static`
    /// workers sound.
    pub(super) struct Operation {
        /// Lifetime-erased `&(dyn Fn(usize) + Sync)` living on the
        /// submitting thread's stack; see the module docs for why every
        /// dereference happens while that frame is pinned in `wait`.
        runner: *const (dyn Fn(usize) + Sync),
        /// Effective parallelism, propagated into each executing thread
        /// so nested operations inherit the submitter's size.
        threads: usize,
        num_chunks: usize,
        /// Next unclaimed chunk (claims at or past `num_chunks` are
        /// no-ops — that is what makes stale stolen tickets harmless).
        next: AtomicUsize,
        done: Mutex<Done>,
        done_cv: Condvar,
    }

    struct Done {
        completed: usize,
        /// First panic payload from any chunk; rethrown by the waiter.
        panic: Option<Box<dyn Any + Send + 'static>>,
    }

    // SAFETY: the raw runner pointer is the only non-Send/Sync field; it
    // is dereferenced only under the claim/latch protocol above, while
    // the referent is guaranteed alive, and `dyn Fn(usize) + Sync`
    // makes the calls themselves data-race free.
    unsafe impl Send for Operation {}
    unsafe impl Sync for Operation {}

    impl Operation {
        /// Wraps a borrowed runner for submission. The caller must keep
        /// the runner alive until [`wait`](Operation::wait) returns —
        /// `run_chunks` and `join` do so by construction (the runner is
        /// a local they block on).
        pub(super) fn new(
            runner: &(dyn Fn(usize) + Sync),
            num_chunks: usize,
            threads: usize,
        ) -> Arc<Operation> {
            // SAFETY: lifetime erasure only — a raw `*const dyn Trait`
            // spells an implicit `'static` trait-object bound, so the
            // borrow must be transmuted in (same fat-pointer layout).
            // The claim/latch protocol in the module docs keeps every
            // dereference inside the referent's real lifetime.
            let runner: *const (dyn Fn(usize) + Sync) = unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                    runner,
                )
            };
            Arc::new(Operation {
                runner,
                threads,
                num_chunks,
                next: AtomicUsize::new(0),
                done: Mutex::new(Done { completed: 0, panic: None }),
                done_cv: Condvar::new(),
            })
        }

        /// Claims and runs chunks until none are left. Called by the
        /// submitter (participating) and by any worker holding a ticket;
        /// panics are contained per chunk so resident workers survive.
        pub(super) fn work(&self) {
            let _restore = super::RestoreSize(super::set_installed_size(self.threads));
            loop {
                let i = self.next.fetch_add(1, AtomicOrdering::Relaxed);
                if i >= self.num_chunks {
                    return;
                }
                stats::note_chunk_claim();
                // SAFETY: `i` was claimed, so the submitter is pinned in
                // `wait` until this call returns and is counted.
                let runner = unsafe { &*self.runner };
                let outcome = catch_unwind(AssertUnwindSafe(|| runner(i)));
                let mut done = lock_tolerant(&self.done);
                if let Err(payload) = outcome {
                    done.panic.get_or_insert(payload);
                }
                done.completed += 1;
                if done.completed == self.num_chunks {
                    self.done_cv.notify_all();
                }
            }
        }

        /// Blocks until every chunk completed; returns the first panic
        /// payload, if any.
        pub(super) fn wait_quiet(&self) -> Option<Box<dyn Any + Send + 'static>> {
            let mut done = lock_tolerant(&self.done);
            while done.completed < self.num_chunks {
                done = self.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
            }
            done.panic.take()
        }

        /// Blocks until every chunk completed, rethrowing the first
        /// chunk panic on the submitting thread.
        pub(super) fn wait(&self) {
            if let Some(payload) = self.wait_quiet() {
                resume_unwind(payload);
            }
        }
    }

    /// One resident worker's shared state: its ticket deque.
    struct WorkerState {
        /// Tickets, newest at the back: the owner pops the back (LIFO —
        /// freshest submission first, best cache locality), thieves pop
        /// the front (FIFO — oldest submission first, fairest).
        deque: Mutex<VecDeque<Arc<Operation>>>,
    }

    /// The process-wide registry: the grow-only worker list and the
    /// sleep/wake channel.
    struct Registry {
        /// Snapshot-swapped so hot paths clone one `Arc`, not the list.
        workers: Mutex<Arc<Vec<Arc<WorkerState>>>>,
        /// Wake epoch: bumped on every submission. A worker that saw
        /// epoch `e` and found no work sleeps until the epoch moves —
        /// the re-check-after-read protocol makes lost wakeups
        /// impossible.
        signal: Mutex<u64>,
        signal_cv: Condvar,
    }

    static REGISTRY: OnceLock<Registry> = OnceLock::new();

    fn registry() -> &'static Registry {
        REGISTRY.get_or_init(|| Registry {
            workers: Mutex::new(Arc::new(Vec::new())),
            signal: Mutex::new(0),
            signal_cv: Condvar::new(),
        })
    }

    fn worker_snapshot(reg: &Registry) -> Arc<Vec<Arc<WorkerState>>> {
        lock_tolerant(&reg.workers).clone()
    }

    /// Grows the resident crew to at least `n` workers. Workers are
    /// spawned once and never exit; indices are assigned in spawn order
    /// and stay stable for the process lifetime.
    fn ensure_workers(reg: &'static Registry, n: usize) {
        if worker_snapshot(reg).len() >= n {
            return;
        }
        let mut workers = lock_tolerant(&reg.workers);
        if workers.len() >= n {
            return;
        }
        let mut grown: Vec<Arc<WorkerState>> = workers.as_ref().clone();
        while grown.len() < n {
            let index = grown.len();
            let state = Arc::new(WorkerState { deque: Mutex::new(VecDeque::new()) });
            grown.push(state.clone());
            std::thread::Builder::new()
                .name(format!("mshc-rayon-{index}"))
                .spawn(move || worker_loop(registry(), state, index))
                .expect("spawn resident rayon worker");
        }
        *workers = Arc::new(grown);
    }

    /// The resident worker body: pop own deque (LIFO), steal (FIFO),
    /// else sleep until the wake epoch moves.
    fn worker_loop(reg: &'static Registry, me: Arc<WorkerState>, index: usize) {
        WORKER_INDEX.with(|c| c.set(Some(index)));
        loop {
            let epoch = *lock_tolerant(&reg.signal);
            match find_work(reg, &me, index) {
                Some(op) => op.work(),
                None => {
                    let mut signal = lock_tolerant(&reg.signal);
                    while *signal == epoch {
                        signal = reg.signal_cv.wait(signal).unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        }
    }

    /// Own deque first (back = newest), then steal round-robin starting
    /// just past our own index (front = oldest).
    fn find_work(reg: &Registry, me: &WorkerState, index: usize) -> Option<Arc<Operation>> {
        if let Some(op) = lock_tolerant(&me.deque).pop_back() {
            return Some(op);
        }
        let workers = worker_snapshot(reg);
        let n = workers.len();
        for k in 1..n {
            let victim = &workers[(index + k) % n];
            if let Some(op) = lock_tolerant(&victim.deque).pop_front() {
                stats::STEALS.fetch_add(1, AtomicOrdering::Relaxed);
                return Some(op);
            }
        }
        None
    }

    /// Publishes `engage` tickets for `op` onto distinct worker deques
    /// (skipping the submitter if it is itself a worker) and wakes the
    /// crew. Tickets are hints, not work assignments: chunks are claimed
    /// from the operation's counter, so scheduling never shapes results.
    pub(super) fn submit(op: &Arc<Operation>, engage: usize) {
        if engage == 0 {
            return;
        }
        let reg = registry();
        stats::OPS_SUBMITTED.fetch_add(1, AtomicOrdering::Relaxed);
        let me = WORKER_INDEX.with(std::cell::Cell::get);
        // First-fit engagement keeps the same low worker indices busy
        // across operations, so per-worker state pinned by callers
        // (evaluator arenas) stays warm.
        let needed = match me {
            Some(i) if i < engage + 1 => engage + 1,
            _ => engage,
        };
        ensure_workers(reg, needed);
        let workers = worker_snapshot(reg);
        let mut published = 0usize;
        for (index, worker) in workers.iter().enumerate() {
            if published == engage {
                break;
            }
            if Some(index) == me {
                continue;
            }
            let mut deque = lock_tolerant(&worker.deque);
            deque.push_back(op.clone());
            stats::note_queue_depth(deque.len());
            drop(deque);
            published += 1;
        }
        stats::WAKE_EPOCHS.fetch_add(1, AtomicOrdering::Relaxed);
        let mut signal = lock_tolerant(&reg.signal);
        *signal += 1;
        reg.signal_cv.notify_all();
    }

    /// The number of resident workers currently spawned (diagnostics).
    pub(super) fn spawned_workers() -> usize {
        REGISTRY.get().map_or(0, |reg| worker_snapshot(reg).len())
    }
}

/// The number of resident workers currently spawned. Zero until the
/// first parallel operation; grows lazily, never shrinks. Diagnostic
/// only — sizing decisions should use [`current_num_threads`].
pub fn spawned_workers() -> usize {
    pool::spawned_workers()
}

/// Scheduling telemetry of the resident pool (see [`pool_stats`]).
///
/// Every field is a *diagnostic*: steal totals, queue depths and the
/// per-worker chunk split depend on OS scheduling and vary run to run
/// even at a fixed thread count, so none of them may ever flow into a
/// deterministic artifact. (`ops_submitted` and `chunk_claims` *are*
/// reproducible at a fixed thread count — the chunk grid is a pure
/// function of lengths and the effective thread count — but they still
/// change with `RAYON_NUM_THREADS`.)
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallel operations submitted to the crew.
    pub ops_submitted: u64,
    /// Chunks claimed and executed across all operations.
    pub chunk_claims: u64,
    /// Tickets taken from another worker's deque (work stealing).
    pub steals: u64,
    /// Wake-epoch bumps (one per ticket-publishing submission).
    pub wake_epochs: u64,
    /// Deepest ticket deque observed at publish time.
    pub queue_depth_hwm: u64,
    /// Chunks executed by each resident worker, in spawn order (first
    /// 64 workers tracked).
    pub per_worker_chunks: Vec<u64>,
    /// Chunks executed off the resident crew: submitters claiming their
    /// own operation's chunks, plus any worker past the tracked window.
    pub foreign_chunks: u64,
}

/// Snapshot of the pool's telemetry counters.
///
/// **Shim-specific.** Real `rayon` has no such API: the lone consumer
/// is `mshc-obs`, which treats pool telemetry as optional and would
/// drop this bridge if the vendored shim were ever swapped for the real
/// crate (the swap stays a manifest change for every other caller).
pub fn pool_stats() -> PoolStats {
    pool::stats_snapshot()
}

/// Zeroes the pool telemetry counters (`mshc-obs` registry resets and
/// bench probes isolate phases with this). Counters are process-wide,
/// so concurrent parallel work bleeds into whatever is measured next —
/// callers reset between phases, not mid-operation.
pub fn reset_pool_stats() {
    pool::reset_stats()
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Runs both closures, potentially in parallel, and returns both results
/// (`a` runs on the calling thread; `b` is offered to the pool and
/// reclaimed by the caller if no worker picked it up first). If both
/// closures panic, `a`'s panic wins — like real rayon.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let threads = current_num_threads();
    if threads <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let b_cell = Mutex::new(Some(b));
    let rb_cell: Mutex<Option<RB>> = Mutex::new(None);
    let runner = |_chunk: usize| {
        let f = lock_tolerant(&b_cell).take().expect("single chunk is claimed exactly once");
        let rb = f();
        *lock_tolerant(&rb_cell) = Some(rb);
    };
    let op = pool::Operation::new(&runner, 1, threads);
    pool::submit(&op, 1);
    // `a` must not unwind past the operation while a worker may still be
    // touching the borrowed runner; contain it, settle `b`, then rethrow.
    let ra = std::panic::catch_unwind(std::panic::AssertUnwindSafe(a));
    op.work();
    let b_panic = op.wait_quiet();
    match ra {
        Err(payload) => std::panic::resume_unwind(payload),
        Ok(ra) => {
            if let Some(payload) = b_panic {
                std::panic::resume_unwind(payload);
            }
            let rb = lock_tolerant(&rb_cell).take().expect("b completed without panicking");
            (ra, rb)
        }
    }
}

// ---------------------------------------------------------------------------
// The chunked executor
// ---------------------------------------------------------------------------

/// Splits `0..len` into chunks, folds each with `fold_chunk` on the
/// resident pool (submitter participating), and returns the chunk
/// results **in chunk order**. The chunk grid depends only on `len`,
/// `min_len` and the effective thread count — and every consumer below
/// merges chunk results associatively with the same semantics the
/// sequential fold has — so results do not depend on scheduling: not on
/// which worker claims a chunk, not on steal order, not on how many
/// threads actually show up.
fn run_chunks<Out, F>(len: usize, min_len: usize, fold_chunk: F) -> Vec<Out>
where
    Out: Send,
    F: Fn(Range<usize>) -> Out + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = current_num_threads();
    if threads <= 1 || len <= min_len.max(1) {
        return vec![fold_chunk(0..len)];
    }
    // A few chunks per worker amortizes imbalance without shrinking
    // chunks below the caller's splitting hint.
    let chunk_size = len.div_ceil(threads * 2).max(min_len.max(1));
    let num_chunks = len.div_ceil(chunk_size);
    if num_chunks <= 1 {
        return vec![fold_chunk(0..len)];
    }
    let results: Mutex<Vec<(usize, Out)>> = Mutex::new(Vec::with_capacity(num_chunks));
    let runner = |i: usize| {
        let lo = i * chunk_size;
        let hi = (lo + chunk_size).min(len);
        let out = fold_chunk(lo..hi);
        lock_tolerant(&results).push((i, out));
    };
    let op = pool::Operation::new(&runner, num_chunks, threads);
    pool::submit(&op, (threads - 1).min(num_chunks - 1));
    op.work();
    op.wait();
    let mut chunks = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    chunks.sort_unstable_by_key(|&(i, _)| i);
    chunks.into_iter().map(|(_, out)| out).collect()
}

// ---------------------------------------------------------------------------
// ParallelIterator
// ---------------------------------------------------------------------------

/// A splittable, indexed source of items plus rayon's adaptor/consumer
/// surface.
///
/// The producer half (`par_len` / `produce`) is shim plumbing: adaptors
/// wrap it, consumers drive it chunk-by-chunk through the executor. Item
/// `i` must not depend on which chunk it lands in — all the standard
/// combinators satisfy this by construction (`map_init` state is scratch,
/// re-created per chunk, exactly like rayon's per-worker state).
pub trait ParallelIterator: Sync + Sized {
    /// The item type produced.
    type Item: Send;

    /// Total number of items.
    fn par_len(&self) -> usize;

    /// Minimum chunk length hint (see [`with_min_len`](Self::with_min_len)).
    fn min_len_hint(&self) -> usize {
        1
    }

    /// Feeds the items at indices `range`, in index order, into `sink`
    /// as `(index, item)` pairs. Shim plumbing — not part of rayon's API.
    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, Self::Item));

    // ---- adaptors --------------------------------------------------------

    /// Maps each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Maps each item through `f` with per-worker scratch state: `init`
    /// runs once per chunk (so at least once per participating thread)
    /// and the resulting state is threaded through that chunk's items.
    /// Results must therefore not depend on state carried *across* items
    /// — treat the state as scratch (buffers, cloned bases, RNG-free
    /// evaluators), exactly as with real rayon.
    fn map_init<St, Init, F, R>(self, init: Init, f: F) -> MapInit<Self, Init, F>
    where
        Init: Fn() -> St + Sync,
        F: Fn(&mut St, Self::Item) -> R + Sync,
        R: Send,
    {
        MapInit { base: self, init, f }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Splitting hint: chunks will hold at least `min` items.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min: min.max(1) }
    }

    // ---- consumers -------------------------------------------------------

    /// Runs `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let len = self.par_len();
        run_chunks(len, self.min_len_hint(), |range| {
            self.produce(range, &mut |_, item| f(item));
        });
    }

    /// Collects all items, preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// The minimum item under `cmp`; the **first** of equal minima, like
    /// [`Iterator::min_by`] (sequential parity at any thread count).
    fn min_by<F>(self, cmp: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> Ordering + Sync,
    {
        let len = self.par_len();
        let chunks = run_chunks(len, self.min_len_hint(), |range| {
            let mut best: Option<Self::Item> = None;
            self.produce(range, &mut |_, item| match &best {
                Some(cur) if cmp(&item, cur) != Ordering::Less => {}
                _ => best = Some(item),
            });
            best
        });
        chunks.into_iter().flatten().reduce(|acc, item| {
            if cmp(&item, &acc) == Ordering::Less {
                item
            } else {
                acc
            }
        })
    }

    /// The maximum item under `cmp`; the **last** of equal maxima, like
    /// [`Iterator::max_by`].
    fn max_by<F>(self, cmp: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item, &Self::Item) -> Ordering + Sync,
    {
        let len = self.par_len();
        let chunks = run_chunks(len, self.min_len_hint(), |range| {
            let mut best: Option<Self::Item> = None;
            self.produce(range, &mut |_, item| match &best {
                Some(cur) if cmp(&item, cur) == Ordering::Less => {}
                _ => best = Some(item),
            });
            best
        });
        chunks.into_iter().flatten().reduce(|acc, item| {
            if cmp(&item, &acc) == Ordering::Less {
                acc
            } else {
                item
            }
        })
    }

    /// Sums the items (chunk sums added in chunk order).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let len = self.par_len();
        run_chunks(len, self.min_len_hint(), |range| {
            let mut items = Vec::with_capacity(range.len());
            self.produce(range, &mut |_, item| items.push(item));
            items.into_iter().sum::<S>()
        })
        .into_iter()
        .sum()
    }

    /// Number of items.
    fn count(self) -> usize {
        self.par_len()
    }
}

/// Collection types buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection, preserving index order.
    fn from_par_iter<P>(par_iter: P) -> Self
    where
        P: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P>(par_iter: P) -> Vec<T>
    where
        P: ParallelIterator<Item = T>,
    {
        let len = par_iter.par_len();
        let chunks = run_chunks(len, par_iter.min_len_hint(), |range| {
            let mut items = Vec::with_capacity(range.len());
            par_iter.produce(range, &mut |_, item| items.push(item));
            items
        });
        let mut out = Vec::with_capacity(len);
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Borrowing parallel iterator over a slice.
#[derive(Debug)]
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, &'a T)) {
        for i in range {
            sink(i, &self.slice[i]);
        }
    }
}

/// Borrowing conversion into a parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type produced.
    type Item: Send + 'a;

    /// Iterate the collection in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// Owning parallel iterator over a vector (items cloned out per chunk —
/// a shim simplification; real rayon splits ownership).
#[derive(Debug)]
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Clone + Send + Sync> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn par_len(&self) -> usize {
        self.items.len()
    }

    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, T)) {
        for i in range {
            sink(i, self.items[i].clone());
        }
    }
}

/// Parallel iterator over an integer range.
#[derive(Debug)]
pub struct RangeParIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;

    fn par_len(&self) -> usize {
        self.len
    }

    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, usize)) {
        for i in range {
            sink(i, self.start + i);
        }
    }
}

/// Owning conversion into a parallel iterator (`.into_par_iter()`).
pub trait IntoParallelIterator {
    /// The iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type produced.
    type Item: Send;

    /// Consume the collection into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Clone + Send + Sync> IntoParallelIterator for Vec<T> {
    type Iter = VecParIter<T>;
    type Item = T;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeParIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeParIter {
        RangeParIter { start: self.start, len: self.end.saturating_sub(self.start) }
    }
}

// ---------------------------------------------------------------------------
// Adaptors
// ---------------------------------------------------------------------------

/// Iterator returned by [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, R)) {
        self.base.produce(range, &mut |i, item| sink(i, (self.f)(item)));
    }
}

/// Iterator returned by [`ParallelIterator::map_init`].
pub struct MapInit<P, Init, F> {
    base: P,
    init: Init,
    f: F,
}

impl<P, St, Init, F, R> ParallelIterator for MapInit<P, Init, F>
where
    P: ParallelIterator,
    Init: Fn() -> St + Sync,
    F: Fn(&mut St, P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, R)) {
        let mut state = (self.init)();
        self.base.produce(range, &mut |i, item| sink(i, (self.f)(&mut state, item)));
    }
}

/// Iterator returned by [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
}

impl<P> ParallelIterator for Enumerate<P>
where
    P: ParallelIterator,
{
    type Item = (usize, P::Item);

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, (usize, P::Item))) {
        self.base.produce(range, &mut |i, item| sink(i, (i, item)));
    }
}

/// Iterator returned by [`ParallelIterator::with_min_len`].
pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P> ParallelIterator for MinLen<P>
where
    P: ParallelIterator,
{
    type Item = P::Item;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn min_len_hint(&self) -> usize {
        self.min.max(self.base.min_len_hint())
    }

    fn produce(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, P::Item)) {
        self.base.produce(range, sink);
    }
}

/// The glob-import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashMap;
    use std::thread::ThreadId;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().expect("build never fails")
    }

    #[test]
    fn collect_preserves_order_at_any_thread_count() {
        let xs: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = xs.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 16] {
            let out: Vec<u64> =
                pool(threads).install(|| xs.par_iter().map(|&x| x * 3 + 1).collect());
            assert_eq!(out, expected, "{threads} threads");
        }
    }

    #[test]
    fn map_init_state_is_per_chunk_scratch() {
        // Per-item results must not rely on cross-item state; verify the
        // scratch pattern (state reused as a buffer, output independent).
        let xs: Vec<u32> = (0..512).collect();
        for threads in [1, 3, 8] {
            let out: Vec<u64> = pool(threads).install(|| {
                xs.par_iter()
                    .enumerate()
                    .map_init(Vec::<u32>::new, |buf, (i, &x)| {
                        buf.clear();
                        buf.extend([x, x + 1]);
                        buf.iter().map(|&v| v as u64).sum::<u64>() + i as u64
                    })
                    .collect()
            });
            let expected: Vec<u64> =
                xs.iter().enumerate().map(|(i, &x)| (2 * x + 1) as u64 + i as u64).collect();
            assert_eq!(out, expected, "{threads} threads");
        }
    }

    #[test]
    fn min_by_matches_sequential_first_minimum() {
        // Duplicate minima: the first one must win, as with Iterator::min_by.
        let xs = vec![5.0f64, 1.0, 9.0, 1.0, 7.0, 1.0];
        for threads in [1, 2, 8] {
            let got = pool(threads).install(|| {
                xs.par_iter().enumerate().map(|(i, &x)| (i, x)).min_by(|a, b| a.1.total_cmp(&b.1))
            });
            assert_eq!(got, Some((1, 1.0)), "{threads} threads");
        }
    }

    #[test]
    fn max_by_matches_sequential_last_maximum() {
        let xs = vec![3, 9, 2, 9, 1];
        let seq = xs.iter().enumerate().max_by(|a, b| a.1.cmp(b.1));
        for threads in [1, 2, 8] {
            let got =
                pool(threads).install(|| xs.par_iter().enumerate().max_by(|a, b| a.1.cmp(b.1)));
            assert_eq!(got.map(|(i, _)| i), seq.map(|(i, _)| i), "{threads} threads");
        }
    }

    #[test]
    fn sum_and_count_and_for_each() {
        let xs: Vec<u64> = (1..=100).collect();
        let total: u64 = pool(4).install(|| xs.par_iter().map(|&x| x).sum());
        assert_eq!(total, 5050);
        assert_eq!(xs.par_iter().count(), 100);
        let hits = AtomicUsize::new(0);
        pool(4).install(|| {
            xs.par_iter().for_each(|_| {
                hits.fetch_add(1, AtomicOrdering::Relaxed);
            })
        });
        assert_eq!(hits.load(AtomicOrdering::Relaxed), 100);
    }

    #[test]
    fn into_par_iter_over_ranges_and_vecs() {
        let squares: Vec<usize> =
            pool(4).install(|| (0..50usize).into_par_iter().map(|i| i * i).collect());
        assert_eq!(squares[49], 49 * 49);
        let doubled: Vec<i32> =
            pool(2).install(|| vec![1, 2, 3].into_par_iter().map(|x| x * 2).collect());
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn with_min_len_caps_splitting() {
        // One chunk when min_len >= len: map_init's init runs exactly once.
        let inits = AtomicUsize::new(0);
        let out: Vec<u32> = pool(8).install(|| {
            vec![1u32; 64]
                .par_iter()
                .with_min_len(64)
                .map_init(
                    || {
                        inits.fetch_add(1, AtomicOrdering::Relaxed);
                    },
                    |_, &x| x,
                )
                .collect()
        });
        assert_eq!(out.len(), 64);
        assert_eq!(inits.load(AtomicOrdering::Relaxed), 1);
    }

    #[test]
    fn join_returns_both_and_propagates_order() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
        let (a, b) = pool(4).install(|| join(|| (0..1000u64).sum::<u64>(), || 7u64));
        assert_eq!(a, 499_500);
        assert_eq!(b, 7);
    }

    #[test]
    fn join_propagates_b_panic_and_pool_survives() {
        let caught = std::panic::catch_unwind(|| {
            pool(4).install(|| join(|| 1 + 1, || -> u32 { panic!("b exploded") }))
        });
        assert!(caught.is_err(), "b's panic must reach the caller");
        // The resident crew must shrug it off.
        let xs: Vec<u32> = (0..64).collect();
        let out: Vec<u32> = pool(4).install(|| xs.par_iter().map(|&x| x + 1).collect());
        assert_eq!(out[63], 64);
    }

    #[test]
    fn install_scopes_the_pool_size() {
        let outer = current_num_threads();
        let inner = pool(3).install(current_num_threads);
        assert_eq!(inner, 3);
        assert_eq!(current_num_threads(), outer, "install must restore on exit");
    }

    #[test]
    fn nested_operations_inherit_the_installed_size() {
        // A worker executing a chunk must see the operation's effective
        // size, so nested parallel calls split the same way they would
        // on the submitting thread — like real rayon's pool inheritance.
        let sizes: Vec<usize> = pool(3)
            .install(|| (0..16usize).into_par_iter().map(|_| current_num_threads()).collect());
        assert!(sizes.iter().all(|&s| s == 3), "saw sizes {sizes:?}");
    }

    #[test]
    fn nested_parallelism_completes() {
        // A worker submitting a nested operation must be able to drain
        // it itself even when every other worker is busy — deadlock
        // freedom by self-claiming.
        let out: Vec<u64> = pool(4).install(|| {
            (0..8usize)
                .into_par_iter()
                .map(|i| {
                    let inner: Vec<u64> =
                        (0..64usize).into_par_iter().map(|j| (i * 64 + j) as u64).collect();
                    inner.iter().sum()
                })
                .collect()
        });
        let expected: Vec<u64> = (0..8u64).map(|i| (0..64u64).map(|j| i * 64 + j).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn panic_in_chunk_propagates_and_workers_survive() {
        let xs: Vec<u32> = (0..256).collect();
        let caught = std::panic::catch_unwind(|| {
            pool(4).install(|| {
                xs.par_iter()
                    .map(|&x| if x == 97 { panic!("poisoned candidate") } else { x })
                    .collect::<Vec<u32>>()
            })
        });
        assert!(caught.is_err(), "chunk panic must reach the submitter");
        // Resident workers contained the panic; later operations on the
        // same crew still produce complete, ordered results.
        for _ in 0..3 {
            let out: Vec<u32> = pool(4).install(|| xs.par_iter().map(|&x| x * 2).collect());
            assert_eq!(out, xs.iter().map(|&x| x * 2).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn worker_identity_is_stable_across_operations() {
        // current_thread_index() is the arena-pinning contract: the same
        // index must always mean the same OS thread, across operations.
        let observe = || -> HashMap<usize, ThreadId> {
            let pairs: Vec<Option<(usize, ThreadId)>> = pool(4).install(|| {
                (0..64usize)
                    .into_par_iter()
                    .map(|_| {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        current_thread_index().map(|i| (i, std::thread::current().id()))
                    })
                    .collect()
            });
            pairs.into_iter().flatten().collect()
        };
        let first = observe();
        let second = observe();
        for (index, id) in &second {
            if let Some(prev) = first.get(index) {
                assert_eq!(prev, id, "worker {index} changed identity between operations");
            }
        }
        // The submitting thread is never a worker.
        assert_eq!(current_thread_index(), None);
        assert!(spawned_workers() >= 1, "operations above must have spawned the crew");
    }

    #[test]
    fn induced_delays_do_not_change_merged_results() {
        // Steal-order jitter must be unobservable: per-chunk delays that
        // scramble completion order cannot change the merged output.
        let xs: Vec<u64> = (0..300).collect();
        let expected: Vec<u64> = xs.iter().map(|&x| x * 7 + 3).collect();
        for threads in [2, 4, 8] {
            for round in 0..3u64 {
                let out: Vec<u64> = pool(threads).install(|| {
                    xs.par_iter()
                        .map(|&x| {
                            // Deterministic pseudo-random stagger per item.
                            let jitter = (x * 2654435761 + round) % 37;
                            std::thread::sleep(std::time::Duration::from_micros(jitter));
                            x * 7 + 3
                        })
                        .collect()
                });
                assert_eq!(out, expected, "{threads} threads, round {round}");
            }
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let xs: Vec<u32> = Vec::new();
        let out: Vec<u32> = pool(4).install(|| xs.par_iter().map(|&x| x).collect());
        assert!(out.is_empty());
        assert_eq!(xs.par_iter().min_by(|a, b| a.cmp(b)), None);
    }
}
