//! # mshc-workloads
//!
//! Random and structured MSHC workload generation, reproducing the
//! experimental setup of §5 of the SE paper:
//!
//! > "randomly generated workloads are used \[because\] a generally
//! > accepted set of HC benchmarks does not exist … Workloads are further
//! > classified according to their connectivity, heterogeneity and
//! > communication-to-cost ratio (CCR)."
//!
//! A [`WorkloadSpec`] names a point in that taxonomy — size (tasks ×
//! machines), [`Connectivity`], [`Heterogeneity`], CCR — plus a seed, and
//! [`WorkloadSpec::generate`] deterministically expands it into an
//! [`HcInstance`](mshc_platform::HcInstance):
//!
//! * the DAG comes from the layered random generator with an edge
//!   probability mapped from the connectivity class;
//! * execution times use a range-based heterogeneity model (Braun et al.
//!   style): task `t` draws a base cost `b_t`, and `E[m][t] = b_t · u`
//!   with `u ~ U(1, 1 + h)`, `h` set by the heterogeneity class;
//! * transfer times target the requested CCR: a data item produced by `t`
//!   costs `ccr · mean_exec(t) · U(0.8, 1.2)` per machine pair.
//!
//! [`presets`] enumerates the exact workload classes behind each paper
//! figure, and [`figure1`] ships the reconstructed 7-task worked example
//! (the published matrices are OCR-garbled; DESIGN.md documents the
//! substitution).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disturbance;
pub mod presets;
pub mod spec;
pub mod structured;
pub mod suite;

pub use disturbance::{DisturbanceTrace, DisturbanceTraceSpec};
pub use presets::{figure1, FigureWorkload};
pub use spec::{Connectivity, Heterogeneity, WorkloadSpec};
pub use suite::{named_suite, small_suite, tiny_suite, DagShape, Scenario};
